"""Parallel scenario sweeps: grid expansion, streaming fan-out,
deterministic collection.

A sweep takes one or more :class:`SweepSpec`s — a registered scenario
name, fixed parameter overrides, and a grid of per-parameter value
lists — expands the grid into :class:`SweepCell`s (cartesian product in
sorted-key order, so cell indices are stable), and runs every cell
through an :class:`~repro.experiments.executor.Executor` backend:
inline (``workers=1``), a :mod:`multiprocessing` pool, or a remote
work-queue fabric where socket-connected workers pull cells and push
results (``python -m repro worker``).

Execution is **streaming** regardless of backend: cells are submitted
once and results come back the moment each worker finishes — cached
cells first, then simulated cells in completion order.  Every
completed cell is written to the
:class:`~repro.experiments.cache.ResultCache` *immediately*, so a sweep
killed mid-run resumes from the partial cache and re-simulates only the
unfinished cells.  :meth:`SweepRunner.stream` exposes the raw arrival
order (with an optional progress callback);
:meth:`SweepRunner.run` drains the stream and materializes the final
:class:`SweepResult` in cell-index order.

Call sites normalize onto :class:`SweepRequest` — specs, cache,
base-seed override, progress callback in one value — but the legacy
``run(spec_or_specs, progress=...)`` shapes keep working.

Determinism is a contract, not an accident:

* cell order is fixed by the expansion, and the collected result is
  sorted into cell order regardless of which worker finishes first;
* each cell's RNG seed is either the explicit ``seed`` parameter or
  derived from ``(base_seed, cell_index)`` via a stable hash, so the
  same grid produces the same reports no matter the worker count *or
  the backend*;
* cells already present in the cache are served from disk and never
  re-simulated.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.experiments.cache import cell_key
from repro.experiments.executor import (
    Executor,
    InlineExecutor,
    ProcessPoolExecutor,
    run_cell,
)
from repro.experiments.registry import get_scenario

#: Anything with the ResultCache get/put/persist_stats surface —
#: a local directory cache or a :class:`~repro.experiments.cache_service.CacheClient`.
CacheLike = Any


class SweepError(RuntimeError):
    """A sweep cell failed.

    Carries the failing cell's full identity so parallel failures are
    diagnosable without re-running inline: :attr:`cell` (the
    :class:`SweepCell`), :attr:`params` (its fully-resolved
    parameters), and :attr:`traceback_text` (the worker-side traceback,
    captured in the worker process and shipped back verbatim).
    """

    def __init__(self, message: str, cell: Optional["SweepCell"] = None,
                 traceback_text: str = ""):
        super().__init__(message)
        self.cell = cell
        self.params = dict(cell.params) if cell is not None else {}
        self.traceback_text = traceback_text


@dataclass(frozen=True)
class SweepSpec:
    """One scenario plus the parameter grid to explore over it."""

    scenario: str
    #: fixed overrides applied to every cell
    params: Dict[str, Any] = field(default_factory=dict)
    #: param name -> list of values; cells = cartesian product
    grid: Dict[str, Sequence[Any]] = field(default_factory=dict)
    base_seed: int = 0


@dataclass(frozen=True)
class SweepCell:
    """One fully-resolved point of a sweep."""

    index: int
    scenario: str
    params: Dict[str, Any]
    seed: int
    key: str
    #: True when the seed came from (base_seed, cell_index) rather
    #: than an explicit ``seed`` parameter — the aggregator uses this
    #: to tell seed sweeps apart from incidental per-cell seeding
    seed_derived: bool = False


@dataclass
class CellResult:
    """A cell plus its (possibly cached) report payload."""

    cell: SweepCell
    report: Dict[str, Any]
    cached: bool


@dataclass(frozen=True)
class SweepProgress:
    """One completed cell, as seen by a live progress callback."""

    done: int
    total: int
    result: CellResult
    #: wall-clock seconds since the sweep started streaming
    elapsed_s: float


#: Progress callbacks receive one event per completed cell, in
#: completion order (cached cells first).
ProgressCallback = Callable[[SweepProgress], None]


@dataclass
class SweepRequest:
    """Everything one sweep invocation needs, in a single value.

    ``specs`` accepts a single :class:`SweepSpec` or a sequence (it is
    normalized to a tuple).  ``base_seed``, when set, overrides every
    spec's own ``base_seed`` — the common "same grids, new seed" knob
    without rebuilding specs.  ``cache`` overrides the runner's cache
    for this request only; ``progress`` is the streaming callback.
    """

    specs: Union[SweepSpec, Sequence[SweepSpec]]
    cache: Optional[CacheLike] = None
    base_seed: Optional[int] = None
    progress: Optional[ProgressCallback] = None

    def __post_init__(self) -> None:
        if isinstance(self.specs, SweepSpec):
            self.specs = (self.specs,)
        else:
            self.specs = tuple(self.specs)
        if not all(isinstance(s, SweepSpec) for s in self.specs):
            raise TypeError("SweepRequest.specs must be SweepSpec "
                            "instances")

    def resolved_specs(self) -> Tuple[SweepSpec, ...]:
        """Specs with the request-level ``base_seed`` applied."""
        if self.base_seed is None:
            return tuple(self.specs)
        return tuple(dataclasses.replace(s, base_seed=self.base_seed)
                     for s in self.specs)

    @classmethod
    def coerce(cls, request: Union["SweepRequest", SweepSpec,
                                   Sequence[SweepSpec]],
               progress: Optional[ProgressCallback] = None
               ) -> "SweepRequest":
        """Normalize the legacy call shapes onto a request.

        ``progress`` is the backward-compatible keyword; passing it
        alongside a request that already carries a callback is
        ambiguous and rejected.
        """
        if isinstance(request, SweepRequest):
            if progress is not None:
                if request.progress is not None:
                    raise ValueError(
                        "progress passed both on the SweepRequest and "
                        "as a keyword; pick one")
                return dataclasses.replace(request, progress=progress)
            return request
        return cls(specs=request, progress=progress)


@dataclass
class SweepResult:
    """All cell results, in cell-index order."""

    results: List[CellResult]

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def simulated(self) -> int:
        """Cells that actually streamed out of the executor this run."""
        return sum(1 for r in self.results if not r.cached)

    def stats(self) -> Dict[str, int]:
        return {"cells": len(self.results), "cache_hits": self.cache_hits,
                "simulated": self.simulated}

    def reports(self) -> List[Dict[str, Any]]:
        return [r.report for r in self.results]

    def to_dict(self) -> dict:
        return {
            "cells": [
                {
                    "index": r.cell.index,
                    "scenario": r.cell.scenario,
                    "params": dict(r.cell.params),
                    "seed": r.cell.seed,
                    "key": r.cell.key,
                    "report": r.report,
                }
                for r in self.results
            ],
        }


def derive_cell_seed(base_seed: int, index: int) -> int:
    """A stable, well-mixed per-cell seed from ``(base_seed, index)``.

    ``base_seed + index`` would correlate neighbouring cells (numpy
    seeds close together share low-order state); hashing decorrelates
    them while staying reproducible across processes and platforms.
    """
    digest = hashlib.sha256(
        f"{base_seed}:{index}".encode("ascii")).digest()
    return int.from_bytes(digest[:4], "big")


def expand_grid(grid: Dict[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Cartesian product of a grid, in sorted-key order.

    ``{}`` expands to one empty combination (a single-cell sweep).
    """
    if not grid:
        return [{}]
    keys = sorted(grid)
    combos = []
    for values in itertools.product(*(grid[k] for k in keys)):
        combos.append(dict(zip(keys, values)))
    return combos


def expand_cells(specs: Sequence[SweepSpec]) -> List[SweepCell]:
    """Expand specs into cells with global, stable indices.

    Seed derivation uses the *spec-local* cell position, not the
    global index: a spec's cells (and their cache keys) stay identical
    no matter which other specs share the sweep.
    """
    cells: List[SweepCell] = []
    for spec in specs:
        scenario = get_scenario(spec.scenario)
        for local_index, combo in enumerate(expand_grid(spec.grid)):
            overrides = dict(spec.params)
            overrides.update(combo)
            takes_seed = "seed" in scenario.params
            derived = takes_seed and "seed" not in overrides
            if derived:
                overrides["seed"] = derive_cell_seed(spec.base_seed,
                                                     local_index)
            params = scenario.resolve(overrides)
            # analytic scenarios have no RNG; pin the recorded seed so
            # their cache key depends only on the parameters
            seed = int(params["seed"]) if takes_seed else 0
            cells.append(SweepCell(
                index=len(cells), scenario=spec.scenario, params=params,
                seed=seed, key=cell_key(spec.scenario, params, seed),
                seed_derived=derived))
    return cells


#: Backward-compatible alias: the worker entry point moved to
#: :mod:`repro.experiments.executor` with the backend split.
_run_cell = run_cell


class SweepRunner:
    """Expands, fans out, caches, and collects a sweep.

    The runner owns *what* runs (expansion, cache policy, collection
    order); an :class:`~repro.experiments.executor.Executor` owns
    *where* it runs.  With no injected executor, ``workers=1`` picks
    the inline backend (no pool, easiest to debug and to measure
    coverage on) and ``workers>1`` a process pool; pass ``executor=``
    (e.g. a :class:`~repro.experiments.executor.RemoteExecutor`) to
    fan out anywhere else.  Either way results *stream*: each cell
    lands in the cache (and hits the progress callback) the moment it
    completes, not when the whole batch does.
    """

    def __init__(self, workers: int = 1,
                 cache: Optional[CacheLike] = None,
                 executor: Optional[Executor] = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1: {workers}")
        self.workers = workers
        self.cache = cache
        self.executor = executor

    def run(self, request: Union[SweepRequest, SweepSpec,
                                 Sequence[SweepSpec]],
            progress: Optional[ProgressCallback] = None) -> SweepResult:
        """Drain the stream and return results in cell-index order.

        The collector is deterministic at any worker count and under
        any backend: whatever order cells *complete* in, the
        materialized result is sorted by cell index and therefore
        byte-identical run to run.
        """
        request = SweepRequest.coerce(request, progress=progress)
        results = sorted(self.stream(request),
                         key=lambda r: r.cell.index)
        cache = request.cache if request.cache is not None else self.cache
        if cache is not None:
            cache.persist_stats()
        return SweepResult(results=results)

    def stream(self, request: Union[SweepRequest, SweepSpec,
                                    Sequence[SweepSpec]],
               progress: Optional[ProgressCallback] = None
               ) -> Iterator[CellResult]:
        """Yield :class:`CellResult`s as they complete.

        Cached cells are served (and yielded) first; the rest arrive
        in completion order.  Each simulated cell is written to the
        cache *before* it is yielded, so an interrupted consumer loses
        at most the in-flight cells — a restart re-simulates only what
        never finished.
        """
        request = SweepRequest.coerce(request, progress=progress)
        cache = request.cache if request.cache is not None else self.cache
        progress = request.progress
        cells = expand_cells(request.resolved_specs())
        total = len(cells)
        started = time.monotonic()
        done = 0

        to_run: List[SweepCell] = []
        for cell in cells:
            payload = (cache.get(cell.key, cell.scenario)
                       if cache is not None else None)
            if payload is None:
                to_run.append(cell)
                continue
            done += 1
            result = CellResult(cell=cell, report=payload, cached=True)
            if progress is not None:
                progress(SweepProgress(
                    done=done, total=total, result=result,
                    elapsed_s=time.monotonic() - started))
            yield result

        for cell, status, payload in self._execute(to_run):
            if status != "ok":
                raise SweepError(
                    f"cell #{cell.index} ({cell.scenario} "
                    f"{cell.params}) failed:\n{payload}",
                    cell=cell, traceback_text=str(payload))
            if cache is not None:
                cache.put(cell.key, payload, cell.scenario)
            done += 1
            result = CellResult(cell=cell, report=payload, cached=False)
            if progress is not None:
                progress(SweepProgress(
                    done=done, total=total, result=result,
                    elapsed_s=time.monotonic() - started))
            yield result

    # ------------------------------------------------------------------
    def _execute(self, cells: Sequence[SweepCell]
                 ) -> Iterator[Tuple[SweepCell, str,
                                     Union[Dict[str, Any], str]]]:
        """Yield ``(cell, status, payload)`` in completion order."""
        if not cells:
            return
        if self.executor is not None:
            # caller-owned backend (e.g. a listening RemoteExecutor):
            # drive it, but leave close() to whoever built it
            self.executor.submit_cells(cells)
            yield from self.executor.results()
            return
        if self.workers == 1 or len(cells) == 1:
            backend: Executor = InlineExecutor()
        else:
            backend = ProcessPoolExecutor(workers=self.workers)
        with backend:
            backend.submit_cells(cells)
            yield from backend.results()
