"""Dual-phase replay (Algorithm 1): dimension-aware group testing.

Given ``z`` machines partitioned into ``n = z / m`` groups of size
``m`` (``m`` a multiple of the PP size, so intra-group communication
stays representative of the real job):

* **Phase 1 (horizontal)** — groups by ``x // m``; replay each group as
  a reduced-DP job; record which group(s) fail;
* **Phase 2 (vertical)** — groups by ``x mod n``; replay again;
* the solution of ``x // m == a  ∧  x mod n == b`` pinpoints the faulty
  machine(s).  With ``m ≤ n`` the solution is unique (cardinality 1);
  otherwise it has ``⌈m / n⌉`` candidates, all evicted.

Replays reproduce SDC only probabilistically — each group run executes
``steps_per_replay`` steps and trips with per-step probability equal to
the defect's reproduce probability.  All groups of a phase replay in
parallel, so a phase costs one replay's wall time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.cluster.topology import Cluster
from repro.sim import RngStreams


def solution_cardinality(m: int, n: int) -> int:
    """|S| per Algorithm 1 line 10: 1 if m ≤ n else ⌈m / n⌉."""
    if m < 1 or n < 1:
        raise ValueError("group sizes must be positive")
    return 1 if m <= n else math.ceil(m / n)


@dataclass
class ReplayResult:
    """Outcome of one dual-phase replay run."""

    machine_ids: List[int]
    m: int
    n: int
    #: Indices (within ``machine_ids``) of horizontal groups that failed.
    failed_horizontal: List[int] = field(default_factory=list)
    failed_vertical: List[int] = field(default_factory=list)
    #: Physical machine ids isolated by the constraint intersection.
    suspects: List[int] = field(default_factory=list)
    #: Wall time consumed (two phases of parallel replays).
    duration_s: float = 0.0

    @property
    def found_suspects(self) -> bool:
        return bool(self.suspects)


class DualPhaseReplay:
    """Runs Algorithm 1 against the cluster's (hidden) ground truth."""

    def __init__(self, cluster: Cluster, rng: RngStreams,
                 replay_step_s: float = 30.0, steps_per_replay: int = 20,
                 setup_s: float = 120.0):
        self.cluster = cluster
        self._rng = rng.get("diag:replay")
        self.replay_step_s = replay_step_s
        self.steps_per_replay = steps_per_replay
        self.setup_s = setup_s

    # ------------------------------------------------------------------
    def locate_faulty_machines(self, machine_ids: Sequence[int], m: int,
                               group_fails: Optional[
                                   Callable[[List[int]], bool]] = None
                               ) -> ReplayResult:
        """Algorithm 1 over ``machine_ids`` with group size ``m``.

        ``group_fails`` overrides the default ground-truth-based replay
        model (used by tests and what-if analyses).
        """
        z = len(machine_ids)
        if z == 0:
            raise ValueError("no machines to replay")
        if m < 1 or z % m != 0:
            raise ValueError(f"group size {m} must divide machine count {z}")
        n = z // m
        fails = group_fails or self._group_fails
        ids = list(machine_ids)

        # Phase 1: horizontal grouping by x // m.
        horizontal = [ids[g * m:(g + 1) * m] for g in range(n)]
        failed_h = [g for g, group in enumerate(horizontal)
                    if fails(group)]

        # Phase 2: vertical grouping by x mod n.
        vertical = [[ids[x] for x in range(z) if x % n == g]
                    for g in range(n)]
        failed_v = [g for g, group in enumerate(vertical) if fails(group)]

        suspects = [ids[x] for x in range(z)
                    if (x // m) in failed_h and (x % n) in failed_v]
        duration = self.setup_s + 2 * (self.replay_step_s
                                       * self.steps_per_replay)
        return ReplayResult(
            machine_ids=ids, m=m, n=n,
            failed_horizontal=failed_h, failed_vertical=failed_v,
            suspects=sorted(suspects), duration_s=duration)

    def recommended_group_size(self, pp_size: int, dp_size: int,
                               num_machines: int) -> int:
        """Pick m = k · PP_size with m ≤ n (unique solutions), per Sec. 4.2."""
        if pp_size < 1 or num_machines < 1:
            raise ValueError("sizes must be positive")
        best = None
        for k in range(1, num_machines + 1):
            m = k * pp_size
            if num_machines % m != 0:
                continue
            n = num_machines // m
            if m <= n:
                best = m          # largest m with unique solutions
            elif best is not None:
                break
        if best is None:
            # degenerate shapes: fall back to the largest divisor ≤ sqrt
            divisors = [d for d in range(1, num_machines + 1)
                        if num_machines % d == 0
                        and d <= num_machines // d]
            best = divisors[-1]
        return best

    # ------------------------------------------------------------------
    def _group_fails(self, group: List[int]) -> bool:
        """Replay model: a group's run fails if any member machine's
        defect reproduces during the replayed steps."""
        for mid in group:
            machine = self.cluster.machine(mid)
            if not machine.healthy():
                return True          # hard faults always reproduce
            for gpu in machine.gpus:
                if not gpu.sdc_defective:
                    continue
                miss_all = (1.0 - gpu.sdc_reproduce_prob) \
                    ** self.steps_per_replay
                if self._rng.random() < 1.0 - miss_all:
                    return True
        return False
