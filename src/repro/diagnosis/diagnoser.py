"""The Diagnoser: log-guided hierarchical stop-time checks (Sec. 4.2).

Given a crash context (log signature + exit code), the diagnoser picks
a test sequence and runs it hierarchically — each stage only runs if
the previous one found nothing, exactly as the paper describes for NCCL
internal errors (EUD → intra-machine all-to-all → inter-machine
all-gather).  NaN incidents append the bit-wise alignment suite
(Sec. 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.cluster.topology import Cluster
from repro.diagnosis.suites import (
    BitwiseAlignmentTest,
    DiagnosticTest,
    EudTest,
    InterMachineAllGatherTest,
    IntraMachineAllToAllTest,
    TestReport,
)
from repro.sim import RngStreams

#: Log substrings that select the network-flavoured test sequence.
NCCL_SIGNATURES = ("NCCL", "nccl", "connection reset", "ib_", "RDMA",
                   "infiniband", "timed out")
#: Log substrings that select the GPU-flavoured sequence.
GPU_SIGNATURES = ("CUDA", "illegal memory access", "ECC", "Xid",
                  "device-side assert")


@dataclass
class DiagnosisReport:
    """What the stop-time checks concluded."""

    reports: List[TestReport] = field(default_factory=list)
    suspects: List[int] = field(default_factory=list)
    total_duration_s: float = 0.0

    @property
    def found_suspects(self) -> bool:
        return bool(self.suspects)

    @property
    def tests_run(self) -> List[str]:
        return [r.test_name for r in self.reports]


class Diagnoser:
    """Runs hierarchical stop-time test sequences."""

    def __init__(self, cluster: Cluster, rng: RngStreams,
                 use_real_minigpt: bool = False):
        self.cluster = cluster
        self.eud = EudTest(cluster, rng)
        self.intra = IntraMachineAllToAllTest(cluster, rng)
        self.inter = InterMachineAllGatherTest(cluster, rng)
        if use_real_minigpt:
            # execute the actual deterministic reference workload
            # instead of the recall-model stand-in (Sec. 9's MiniGPT)
            from repro.diagnosis.minigpt import MiniGptAlignmentTest
            self.bitwise = MiniGptAlignmentTest(cluster, rng)
        else:
            self.bitwise = BitwiseAlignmentTest(cluster, rng)

    # ------------------------------------------------------------------
    def sequence_for(self, log_message: str, nan: bool = False
                     ) -> List[DiagnosticTest]:
        """Pick the test hierarchy from the crash's log signature."""
        if nan:
            # Sec. 4.3: standard GPU + network tests, then bit-wise
            # alignment if everything passes.
            return [self.eud, self.intra, self.inter, self.bitwise]
        if any(sig in log_message for sig in NCCL_SIGNATURES):
            return [self.eud, self.intra, self.inter]
        if any(sig in log_message for sig in GPU_SIGNATURES):
            return [self.eud, self.intra]
        return [self.eud]

    def diagnose(self, machine_ids: Sequence[int],
                 log_message: str = "", nan: bool = False
                 ) -> DiagnosisReport:
        """Run the hierarchy; stop at the first stage that finds suspects."""
        report = DiagnosisReport()
        for test in self.sequence_for(log_message, nan=nan):
            result = test.run(machine_ids)
            report.reports.append(result)
            report.total_duration_s += result.duration_s
            if result.suspects:
                report.suspects = result.suspects
                break
        return report

    def quick_screen(self, machine_ids: Sequence[int]) -> DiagnosisReport:
        """EUD-only screen, used before reusing machines after restarts."""
        result = self.eud.run(machine_ids)
        return DiagnosisReport(reports=[result], suspects=result.suspects,
                               total_duration_s=result.duration_s)
