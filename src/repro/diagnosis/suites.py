"""Diagnostic test models: duration + detection profile vs ground truth.

The control-plane policy only ever sees :class:`TestReport` objects; it
never touches the injector's ground truth directly.  Each test model
decides, per machine, whether the underlying defect class is *in scope*
for that test and then flips a recall-weighted coin — which is exactly
how real diagnostics behave: NCCL perf tests cannot see SDC, EUD sees
only ~70% of it, and every tool has some false-positive floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


from repro.cluster.topology import Cluster
from repro.sim import RngStreams


@dataclass
class TestReport:
    """Outcome of one diagnostic test over a set of machines."""

    test_name: str
    duration_s: float
    tested_machines: List[int]
    suspects: List[int] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.suspects


class DiagnosticTest:
    """Base class: subclasses define scope and recall."""

    name = "base"
    duration_s = 60.0
    false_positive_rate = 0.0005

    def __init__(self, cluster: Cluster, rng: RngStreams):
        self.cluster = cluster
        self._rng = rng.get(f"diag:{self.name}")

    def run(self, machine_ids: Sequence[int]) -> TestReport:
        suspects = []
        for mid in machine_ids:
            detect_prob = self._detect_probability(mid)
            if detect_prob > 0 and self._rng.random() < detect_prob:
                suspects.append(mid)
            elif self._rng.random() < self.false_positive_rate:
                suspects.append(mid)  # healthy machine wrongly flagged
        return TestReport(test_name=self.name, duration_s=self.duration_s,
                          tested_machines=list(machine_ids),
                          suspects=sorted(suspects))

    def _detect_probability(self, machine_id: int) -> float:
        raise NotImplementedError


class EudTest(DiagnosticTest):
    """NVIDIA Extended Utility Diagnostics: GPU-level hardware checks.

    Catches hard GPU defects reliably; catches SDC-class defects with
    only ~70% recall (Sec. 9).
    """

    name = "eud"
    duration_s = 300.0
    sdc_recall = 0.70

    def _detect_probability(self, machine_id: int) -> float:
        machine = self.cluster.machine(machine_id)
        hard_defect = any(
            (not g.available) or g.driver_hung or g.hbm_faulty
            or (not g.dcgm_healthy) or g.pending_row_remaps >= 8
            for g in machine.gpus)
        if hard_defect:
            return 0.98
        if machine.has_sdc_defect():
            return self.sdc_recall
        if any(g.overheating for g in machine.gpus):
            return 0.9
        return 0.0


class IntraMachineAllToAllTest(DiagnosticTest):
    """Intra-machine all-to-all: verifies inter-GPU link bandwidth."""

    name = "intra_all_to_all"
    duration_s = 120.0

    def _detect_probability(self, machine_id: int) -> float:
        machine = self.cluster.machine(machine_id)
        if any(g.pcie_bandwidth_frac < 0.8 for g in machine.gpus):
            return 0.95
        if any(g.throttled for g in machine.gpus):
            return 0.6
        return 0.0


class InterMachineAllGatherTest(DiagnosticTest):
    """Neighbor all-gather: verifies NIC/switch connectivity + integrity."""

    name = "inter_all_gather"
    duration_s = 180.0

    def _detect_probability(self, machine_id: int) -> float:
        machine = self.cluster.machine(machine_id)
        if not self.cluster.network_reachable(machine_id):
            return 0.99
        if any(not nic.up for nic in machine.nics):
            return 0.99
        if any(nic.flapping for nic in machine.nics):
            return 0.80   # flaps reproduce only sometimes
        return 0.0


class BitwiseAlignmentTest(DiagnosticTest):
    """MiniGPT bit-wise alignment (Sec. 4.3 / Sec. 9).

    Every machine runs one training step of a reference model on fixed
    inputs with predefined weights; outputs must match bit-for-bit.
    Detection of an SDC defect requires the defect to *reproduce* during
    that step, so recall is the defect's reproduce probability (scaled
    by a harness recall just below 1).
    """

    name = "bitwise_alignment"
    duration_s = 240.0
    harness_recall = 0.95

    def _detect_probability(self, machine_id: int) -> float:
        machine = self.cluster.machine(machine_id)
        probs = [g.sdc_reproduce_prob for g in machine.gpus
                 if g.sdc_defective]
        if not probs:
            return 0.0
        # independent chance any defective GPU trips during the step
        miss = 1.0
        for p in probs:
            miss *= (1.0 - p)
        return self.harness_recall * (1.0 - miss)
