"""The MiniGPT verification suite (Sec. 9): a real, deterministic
reference workload for bit-wise alignment testing.

The paper's answer to EUD's 70% SDC recall is MiniGPT: every machine
runs one training step of a small reference transformer with predefined
weights on fixed inputs; outputs must agree **bit-for-bit** across
machines, because the computation is fully deterministic.  A machine
whose arithmetic is corrupted — even by a single flipped mantissa bit —
produces a different checksum and is isolated.

Unlike the probabilistic test models in :mod:`repro.diagnosis.suites`,
this module executes an actual numerical forward + backward pass
(numpy, float32).  The simulated GPU's SDC defect is realized as a
physical perturbation: a bit flip injected into one intermediate
activation with the defect's reproduce probability per step.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.topology import Cluster
from repro.sim import RngStreams
from repro.sim.rng import derive_seed


@dataclass(frozen=True)
class MiniGptSpec:
    """Shape of the reference model (small on purpose — it must run on
    every machine in seconds)."""

    vocab_size: int = 128
    d_model: int = 32
    n_heads: int = 4
    n_layers: int = 2
    seq_len: int = 16
    batch: int = 4

    def __post_init__(self) -> None:
        if self.d_model % self.n_heads != 0:
            raise ValueError("d_model must be divisible by n_heads")


class MiniGpt:
    """A tiny deterministic decoder-only transformer in numpy.

    All parameters derive from a fixed seed, all math is float32 with a
    fixed operation order, so two healthy executions agree exactly.
    """

    def __init__(self, spec: Optional[MiniGptSpec] = None, seed: int = 1234):
        self.spec = spec or MiniGptSpec()
        self.seed = seed
        rng = np.random.default_rng(seed)
        s = self.spec
        scale = np.float32(0.08)

        def mat(*shape):
            return (rng.standard_normal(shape).astype(np.float32) * scale)

        self.wte = mat(s.vocab_size, s.d_model)
        self.wpe = mat(s.seq_len, s.d_model)
        self.layers = []
        for _ in range(s.n_layers):
            self.layers.append({
                "wq": mat(s.d_model, s.d_model),
                "wk": mat(s.d_model, s.d_model),
                "wv": mat(s.d_model, s.d_model),
                "wo": mat(s.d_model, s.d_model),
                "w1": mat(s.d_model, 4 * s.d_model),
                "w2": mat(4 * s.d_model, s.d_model),
            })
        self.head = mat(s.d_model, s.vocab_size)

    # ------------------------------------------------------------------
    def fixed_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """The predefined (inputs, targets) every machine uses."""
        s = self.spec
        rng = np.random.default_rng(derive_seed(self.seed, "batch"))
        tokens = rng.integers(0, s.vocab_size,
                              size=(s.batch, s.seq_len + 1))
        return tokens[:, :-1], tokens[:, 1:]

    @staticmethod
    def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
        x = x - x.max(axis=axis, keepdims=True)
        e = np.exp(x, dtype=np.float32)
        return e / e.sum(axis=axis, keepdims=True)

    @staticmethod
    def _layernorm(x: np.ndarray) -> np.ndarray:
        mu = x.mean(axis=-1, keepdims=True, dtype=np.float32)
        var = x.var(axis=-1, keepdims=True, dtype=np.float32)
        return ((x - mu) / np.sqrt(var + np.float32(1e-5))).astype(
            np.float32)

    def forward(self, tokens: np.ndarray,
                corrupt: Optional["SdcPerturbation"] = None) -> np.ndarray:
        """Logits for a token batch; optional SDC perturbation applied
        to one intermediate activation (what a faulty ALU would do)."""
        s = self.spec
        x = (self.wte[tokens] + self.wpe[np.arange(tokens.shape[1])]
             ).astype(np.float32)
        causal = np.triu(np.full((tokens.shape[1], tokens.shape[1]),
                                 np.float32(-1e9)), k=1)
        for li, layer in enumerate(self.layers):
            h = self._layernorm(x)
            q = h @ layer["wq"]
            k = h @ layer["wk"]
            v = h @ layer["wv"]
            b, t, d = q.shape
            hd = d // s.n_heads

            def split(m):
                return m.reshape(b, t, s.n_heads, hd).transpose(0, 2, 1, 3)

            att = (split(q) @ split(k).transpose(0, 1, 3, 2)
                   / np.float32(np.sqrt(hd)))
            att = self._softmax(att + causal)
            out = (att @ split(v)).transpose(0, 2, 1, 3).reshape(b, t, d)
            x = x + out @ layer["wo"]
            if corrupt is not None and corrupt.layer == li:
                x = corrupt.apply(x)
            h = self._layernorm(x)
            x = x + np.maximum(h @ layer["w1"], np.float32(0)) @ layer["w2"]
        return self._layernorm(x) @ self.head

    def training_step_digest(self,
                             corrupt: Optional["SdcPerturbation"] = None
                             ) -> str:
        """One forward + loss + (input-)gradient pass, digested.

        The digest covers the loss and the logit gradients, so both
        forward and backward corruption are caught.
        """
        tokens, targets = self.fixed_batch()
        logits = self.forward(tokens, corrupt=corrupt)
        probs = self._softmax(logits)
        b, t, v = probs.shape
        onehot = np.zeros_like(probs)
        onehot[np.arange(b)[:, None], np.arange(t)[None, :], targets] = 1
        loss = np.float32(-(onehot * np.log(probs + np.float32(1e-9)))
                          .sum() / (b * t))
        grad = ((probs - onehot) / np.float32(b * t)).astype(np.float32)
        digest = hashlib.sha256()
        digest.update(np.float32(loss).tobytes())
        digest.update(grad.tobytes())
        return digest.hexdigest()


@dataclass
class SdcPerturbation:
    """A faulty-ALU model: flips one mantissa bit of one activation."""

    layer: int = 0
    flat_index: int = 7
    bit: int = 13     # a mantissa bit: tiny numeric change, silent

    def apply(self, x: np.ndarray) -> np.ndarray:
        out = x.copy()
        flat = out.reshape(-1)
        idx = self.flat_index % flat.size
        as_int = flat[idx:idx + 1].view(np.uint32)
        as_int ^= np.uint32(1 << self.bit)
        flat[idx:idx + 1] = as_int.view(np.float32)
        return out


class MiniGptVerificationSuite:
    """Fleet-wide bit-wise alignment using the real MiniGpt workload.

    Every machine computes the training-step digest; the **majority**
    digest is the reference, and machines disagreeing with it are
    isolated.  A machine with an SDC defect perturbs its computation
    with probability ``sdc_reproduce_prob`` per step (SDCs are input-
    and timing-sensitive), so several steps may be run for recall.
    """

    duration_s_per_step = 12.0

    def __init__(self, cluster: Cluster, rng: RngStreams,
                 spec: Optional[MiniGptSpec] = None, seed: int = 1234):
        self.cluster = cluster
        self.model = MiniGpt(spec, seed=seed)
        self._rng = rng.get("diag:minigpt")
        self._reference = self.model.training_step_digest()

    # ------------------------------------------------------------------
    def run_machine_step(self, machine_id: int) -> str:
        """One verification step on one machine (digest returned)."""
        machine = self.cluster.machine(machine_id)
        defective = [g for g in machine.gpus if g.sdc_defective]
        if defective and any(
                self._rng.random() < g.sdc_reproduce_prob
                for g in defective):
            corrupt = SdcPerturbation(
                layer=int(self._rng.integers(
                    0, self.model.spec.n_layers)),
                flat_index=int(self._rng.integers(0, 2048)),
                bit=int(self._rng.integers(8, 20)))
            return self.model.training_step_digest(corrupt=corrupt)
        return self.model.training_step_digest()

    def run(self, machine_ids: Sequence[int],
            steps: int = 3) -> "MiniGptReport":
        """Run ``steps`` verification rounds across machines."""
        if steps < 1:
            raise ValueError("need at least one step")
        mismatches: Dict[int, int] = {}
        for _ in range(steps):
            digests = {mid: self.run_machine_step(mid)
                       for mid in machine_ids}
            # majority digest is the reference (and equals the healthy
            # digest unless most of the fleet is corrupt)
            counts: Dict[str, int] = {}
            for d in digests.values():
                counts[d] = counts.get(d, 0) + 1
            majority = max(counts, key=lambda k: counts[k])
            for mid, d in digests.items():
                if d != majority:
                    mismatches[mid] = mismatches.get(mid, 0) + 1
        return MiniGptReport(
            tested_machines=list(machine_ids), steps=steps,
            mismatch_counts=mismatches,
            suspects=sorted(mismatches),
            duration_s=steps * self.duration_s_per_step,
            reference_digest=self._reference)


class MiniGptAlignmentTest:
    """Adapter exposing the MiniGPT suite as a stop-time
    :class:`~repro.diagnosis.suites.DiagnosticTest`-compatible stage.

    Drop-in replacement for the probabilistic
    :class:`~repro.diagnosis.suites.BitwiseAlignmentTest`: same
    interface, but the verdict comes from actually executing the
    deterministic reference workload on every machine.
    """

    name = "bitwise_alignment"

    def __init__(self, cluster: Cluster, rng: RngStreams,
                 steps: int = 3, spec: Optional[MiniGptSpec] = None):
        self.suite = MiniGptVerificationSuite(cluster, rng, spec=spec)
        self.steps = steps

    @property
    def duration_s(self) -> float:
        return self.steps * self.suite.duration_s_per_step

    def run(self, machine_ids: Sequence[int]):
        from repro.diagnosis.suites import TestReport
        report = self.suite.run(machine_ids, steps=self.steps)
        return TestReport(test_name=self.name,
                          duration_s=report.duration_s,
                          tested_machines=list(machine_ids),
                          suspects=report.suspects)


@dataclass
class MiniGptReport:
    """Outcome of a MiniGPT verification run."""

    tested_machines: List[int]
    steps: int
    mismatch_counts: Dict[int, int]
    suspects: List[int]
    duration_s: float
    reference_digest: str

    @property
    def passed(self) -> bool:
        return not self.suspects
