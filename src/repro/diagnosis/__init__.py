"""Hierarchical stop-time diagnostics (Sec. 4.2).

Stop-time checks run after a job is suspended:

* :mod:`repro.diagnosis.suites` — the individual test models: NVIDIA
  EUD, intra-machine all-to-all, inter-machine all-gather, and the
  MiniGPT bit-wise alignment suite.  Each is a *model* of the real test:
  fixed duration plus a recall/false-positive profile against injected
  ground truth (EUD's SDC recall is 70%, the figure the paper reports).
* :mod:`repro.diagnosis.diagnoser` — the hierarchy: logs/exit codes pick
  a test sequence; earlier (cheaper) tests short-circuit later ones.
* :mod:`repro.diagnosis.replay` — dual-phase replay (Algorithm 1):
  dimension-aware group testing that keeps TP/PP sizes fixed and varies
  only DP, localizing an SDC machine in two replay rounds.
"""

from repro.diagnosis.suites import (
    BitwiseAlignmentTest,
    DiagnosticTest,
    EudTest,
    InterMachineAllGatherTest,
    IntraMachineAllToAllTest,
    TestReport,
)
from repro.diagnosis.diagnoser import Diagnoser, DiagnosisReport
from repro.diagnosis.minigpt import (
    MiniGpt,
    MiniGptReport,
    MiniGptSpec,
    MiniGptVerificationSuite,
    SdcPerturbation,
)
from repro.diagnosis.replay import (
    DualPhaseReplay,
    ReplayResult,
    solution_cardinality,
)

__all__ = [
    "BitwiseAlignmentTest",
    "DiagnosticTest",
    "Diagnoser",
    "DiagnosisReport",
    "DualPhaseReplay",
    "EudTest",
    "InterMachineAllGatherTest",
    "MiniGpt",
    "MiniGptReport",
    "MiniGptSpec",
    "MiniGptVerificationSuite",
    "SdcPerturbation",
    "IntraMachineAllToAllTest",
    "ReplayResult",
    "TestReport",
    "solution_cardinality",
]
