"""Pod process trees (Fig. 7 step 1: "Parse Process Tree").

Root causes can hide in subprocesses spawned by the main training
processes — data fetching, checkpointing — so the analyzer must know
the full tree, not just the torchrun children.  The tree below mirrors
the paper's example: ``launch.sh`` forks the robust daemon and spawns
the training worker (one process per rank) plus data-I/O workers; the
checkpoint engine runs its own helper process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional


@dataclass
class ProcessNode:
    """One process in a pod."""

    pid: int
    name: str
    #: Role tag used by the analyzer to pick training-related processes:
    #: "launcher" | "daemon" | "trainer" | "dataloader" | "ckpt".
    role: str
    rank: Optional[int] = None
    children: List["ProcessNode"] = field(default_factory=list)

    def walk(self) -> Iterator["ProcessNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find_by_role(self, role: str) -> List["ProcessNode"]:
        return [node for node in self.walk() if node.role == role]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ProcessNode {self.pid} {self.name} ({self.role})>"


#: Roles whose stacks the analyzer aggregates.  The robust daemon and
#: the launcher are infrastructure, not workload — their stacks would
#: only add noise.
TRAINING_ROLES = ("trainer", "dataloader", "ckpt")


def build_pod_process_tree(machine_id: int, ranks: List[int],
                           dataloaders_per_rank: int = 1,
                           with_ckpt_process: bool = True) -> ProcessNode:
    """Construct the canonical pod tree for a machine hosting ``ranks``.

    PIDs are synthesized deterministically from the machine id so trees
    are stable across captures.
    """
    base = 10_000 * (machine_id + 1)
    root = ProcessNode(pid=base, name="launch.sh", role="launcher")
    root.children.append(ProcessNode(
        pid=base + 1, name="robust-daemon", role="daemon"))
    torchrun = ProcessNode(pid=base + 2, name="torchrun", role="launcher")
    root.children.append(torchrun)
    next_pid = base + 10
    for rank in ranks:
        trainer = ProcessNode(pid=next_pid, name=f"trainer-rank{rank}",
                              role="trainer", rank=rank)
        next_pid += 1
        for w in range(dataloaders_per_rank):
            trainer.children.append(ProcessNode(
                pid=next_pid, name=f"dataloader-{rank}-{w}",
                role="dataloader", rank=rank))
            next_pid += 1
        if with_ckpt_process:
            trainer.children.append(ProcessNode(
                pid=next_pid, name=f"ckpt-worker-{rank}", role="ckpt",
                rank=rank))
            next_pid += 1
        torchrun.children.append(trainer)
    return root


def training_processes(root: ProcessNode) -> List[ProcessNode]:
    """All processes whose stacks matter for aggregation analysis."""
    return [node for node in root.walk() if node.role in TRAINING_ROLES]
