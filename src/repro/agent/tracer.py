"""On-demand stack-trace capture (py-spy / flight-recorder stand-in).

When the controller triggers aggregation analysis, each pod's tracer
captures the stacks of every training-related process and ships them to
the runtime analyzer.  The reproduction derives per-rank stack states
from the job's hang-propagation model, then renders one trace per
trainer process (plus steady-state traces for dataloader / checkpoint
subprocesses, which occasionally *are* the outlier — e.g. a wedged
dataloader).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.agent.process_tree import (
    ProcessNode,
    build_pod_process_tree,
    training_processes,
)
from repro.sim import Simulator
from repro.training.job import JobState, TrainingJob
from repro.training.stacks import (
    StackKind,
    StackTrace,
    make_trace,
    propagate_hang,
)


@dataclass
class TraceCapture:
    """One aggregation round's worth of captured stacks."""

    time: float
    traces: List[StackTrace] = field(default_factory=list)
    process_trees: Dict[int, ProcessNode] = field(default_factory=dict)

    def traces_by_machine(self) -> Dict[int, List[StackTrace]]:
        out: Dict[int, List[StackTrace]] = {}
        for trace in self.traces:
            out.setdefault(trace.machine_id, []).append(trace)
        return out


class OnDemandTracer:
    """Captures stacks from all pods of a job on request."""

    #: Capture latency: signalling every pod + py-spy dump + upload.
    CAPTURE_LATENCY_S = 5.0

    def __init__(self, sim: Simulator, job: TrainingJob):
        from repro.agent.flight_recorder import FlightRecorder
        self.sim = sim
        self.job = job
        self.captures: List[TraceCapture] = []
        #: NCCL flight recorder (Sec. 7): collective launch history used
        #: to corroborate stack-based hang isolation
        self.flight_recorder = FlightRecorder(job.topology)

    def capture(self) -> TraceCapture:
        """Capture stacks from every training-related process now."""
        job = self.job
        states = self._rank_states()
        # snapshot the flight recorder alongside the stacks: a healthy
        # step for running jobs, a truncated one for hung jobs, with
        # the stalled ranks' slot-space ranks marked incomplete
        if job.state is JobState.HUNG and job.stalled_ranks:
            self.flight_recorder.record_step(
                self.sim.now, stalled_ranks=job.stalled_ranks)
        elif job.state is JobState.RUNNING:
            self.flight_recorder.record_step(self.sim.now)
        capture = TraceCapture(time=self.sim.now)
        for slot in range(job.num_machines):
            machine_id = job.slot_to_machine[slot]
            ranks = job.topology.ranks_on_machine(slot)
            tree = build_pod_process_tree(machine_id, ranks)
            capture.process_trees[machine_id] = tree
            for proc in training_processes(tree):
                assert proc.rank is not None
                kind = self._process_kind(proc.role, states[proc.rank])
                capture.traces.append(StackTrace(
                    rank=proc.rank, machine_id=machine_id,
                    process_name=proc.name, kind=kind,
                    frames=make_trace(proc.rank, machine_id, kind).frames))
        self.captures.append(capture)
        return capture

    # ------------------------------------------------------------------
    def _rank_states(self) -> Dict[int, StackKind]:
        job = self.job
        if job.state is JobState.HUNG and job.stalled_ranks:
            return propagate_hang(job.topology, job.stalled_ranks,
                                  job.hang_scenario)
        if job.state is JobState.RUNNING:
            if job.slow_machines:
                # fail-slow capture: the degraded ranks are still deep in
                # compute while everyone else waits at gradient sync
                slow_ranks = {r for m in job.slow_machines
                              for r in job.ranks_of_machine(m)}
                return {r: (StackKind.BACKWARD_COMPUTE if r in slow_ranks
                            else StackKind.GRAD_SYNC_WAIT)
                        for r in job.topology.iter_ranks()}
            # mid-step: every rank shows ordinary compute frames
            return {r: StackKind.BACKWARD_COMPUTE
                    for r in job.topology.iter_ranks()}
        return {r: StackKind.IDLE for r in job.topology.iter_ranks()}

    @staticmethod
    def _process_kind(role: str, trainer_kind: StackKind) -> StackKind:
        """Stack kind for a process given its trainer rank's state."""
        if role == "trainer":
            return trainer_kind
        if role == "dataloader":
            # waiting on the pipe is a dataloader's steady state, so all
            # dataloader stacks land in one (healthy) aggregation group
            return StackKind.DATALOADER_WAIT
        if role == "ckpt":
            return (StackKind.CKPT_D2H
                    if trainer_kind is StackKind.CKPT_D2H
                    else StackKind.IDLE)
        return StackKind.IDLE
