"""Flight recorder: a ring buffer of recent collective operations.

The paper's runtime analyzer combines py-spy stacks with PyTorch's
flight recorder when diagnosing NCCL timeouts (Sec. 7).  The recorder
keeps, per rank, the last N collective launches with their sequence
numbers; when a collective hangs, comparing per-rank sequence numbers
within each communication group exposes *which group* is stuck and
which ranks never joined (the laggards) — complementary evidence to
stack aggregation.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.parallelism import RankTopology


class CollectiveOp(enum.Enum):
    ALL_REDUCE = "all_reduce"
    ALL_GATHER = "all_gather"
    REDUCE_SCATTER = "reduce_scatter"
    SEND = "send"
    RECV = "recv"
    ALL_TO_ALL = "all_to_all"
    BARRIER = "barrier"


@dataclass(frozen=True)
class CollectiveRecord:
    """One collective launch recorded on one rank."""

    seq: int
    op: CollectiveOp
    group_dim: str            # "tp" | "pp" | "dp" | "ep"
    group_index: int
    time: float
    completed: bool = True


class FlightRecorder:
    """Per-rank ring buffers of recent collectives."""

    def __init__(self, topology: RankTopology, capacity: int = 256):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.topology = topology
        self.capacity = capacity
        self._buffers: Dict[int, Deque[CollectiveRecord]] = {
            r: deque(maxlen=capacity) for r in topology.iter_ranks()}
        self._seq: Dict[int, int] = {r: 0 for r in topology.iter_ranks()}

    # ------------------------------------------------------------------
    def record(self, rank: int, op: CollectiveOp, group_dim: str,
               time: float, completed: bool = True) -> CollectiveRecord:
        """Record a collective launch on ``rank``."""
        if rank not in self._buffers:
            raise ValueError(f"unknown rank {rank}")
        seq = self._seq[rank]
        self._seq[rank] += 1
        rec = CollectiveRecord(
            seq=seq, op=op, group_dim=group_dim,
            group_index=self.topology.group_index_of(rank, group_dim),
            time=time, completed=completed)
        self._buffers[rank].append(rec)
        return rec

    def record_step(self, time: float,
                    stalled_ranks: Sequence[int] = ()) -> None:
        """Record one training step's canonical collective sequence.

        Healthy ranks complete the full TP all-gather → PP send/recv →
        DP reduce-scatter sequence; stalled ranks stop mid-way with an
        incomplete TP all-gather — what a real flight recorder shows
        for a backward-communication hang (Fig. 7's stalled stack).
        """
        stalled = set(stalled_ranks)
        for rank in self.topology.iter_ranks():
            self.record(rank, CollectiveOp.ALL_GATHER, "tp", time)
            if rank in stalled:
                self.record(rank, CollectiveOp.ALL_GATHER, "tp",
                            time, completed=False)
                continue
            if self.topology.group_size("pp") > 1:
                self.record(rank, CollectiveOp.SEND, "pp", time)
                self.record(rank, CollectiveOp.RECV, "pp", time)
            self.record(rank, CollectiveOp.REDUCE_SCATTER, "dp", time)

    # ------------------------------------------------------------------
    def last_record(self, rank: int) -> Optional[CollectiveRecord]:
        buf = self._buffers[rank]
        return buf[-1] if buf else None

    def last_seq(self, rank: int) -> int:
        return self._seq[rank] - 1

    def dump(self, rank: int) -> List[CollectiveRecord]:
        return list(self._buffers[rank])

    # ------------------------------------------------------------------
    # hang analysis
    # ------------------------------------------------------------------
    def laggards(self) -> List[int]:
        """Ranks strictly behind their every-group peers in sequence.

        For each parallel group, a collective only completes when all
        members join; a rank whose last sequence number trails its
        group's maximum never issued the next collective — it (or its
        machine) is where the hang originates.
        """
        behind: set = set()
        for dim in ("tp", "pp", "dp"):
            if self.topology.group_size(dim) <= 1:
                continue
            for group in self.topology.groups(dim):
                seqs = {r: self.last_seq(r) for r in group}
                top = max(seqs.values())
                behind.update(r for r, s in seqs.items() if s < top)
        return sorted(behind)

    def incomplete_ranks(self) -> List[int]:
        """Ranks whose most recent collective never completed."""
        out = []
        for rank in self.topology.iter_ranks():
            last = self.last_record(rank)
            if last is not None and not last.completed:
                out.append(rank)
        return sorted(out)

    def stuck_groups(self) -> List[Tuple[str, int]]:
        """(dim, group_index) pairs containing an incomplete collective."""
        stuck = set()
        for rank in self.incomplete_ranks():
            last = self.last_record(rank)
            assert last is not None
            stuck.add((last.group_dim, last.group_index))
        return sorted(stuck)

    def suspect_machines(self) -> List[int]:
        """Machine slots hosting laggard or incomplete ranks."""
        ranks = set(self.laggards()) | set(self.incomplete_ranks())
        return self.topology.machines_of_ranks(sorted(ranks))
