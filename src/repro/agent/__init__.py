"""The per-pod Robust Agent (data plane).

In production the agent is a Python daemon in every training pod that
relays control signals, heartbeats to the Robust Controller, and hosts
the monitor / diagnoser / tracer / checkpoint sub-modules.  In the
reproduction, monitoring and checkpointing are packages of their own;
this package carries the agent-specific pieces:

* :mod:`repro.agent.process_tree` — the pod's process tree (launch
  script → daemon + torchrun → rank workers, dataloader and checkpoint
  subprocesses), which the runtime analyzer parses to decide *which*
  processes' stacks matter;
* :mod:`repro.agent.tracer` — the on-demand tracer (py-spy /
  flight-recorder stand-in) that captures stack traces from every
  training-related process on request.
"""

from repro.agent.flight_recorder import (
    CollectiveOp,
    CollectiveRecord,
    FlightRecorder,
)
from repro.agent.process_tree import ProcessNode, build_pod_process_tree
from repro.agent.tracer import OnDemandTracer, TraceCapture

__all__ = [
    "CollectiveOp",
    "CollectiveRecord",
    "FlightRecorder",
    "OnDemandTracer",
    "ProcessNode",
    "TraceCapture",
    "build_pod_process_tree",
]
