"""Workload metric / gauge / log collection (Sec. 4.1, "Metrics
collection").

The collector subscribes to the training job's step completions (the
wandb-style continuously observable metrics), polls its RDMA-traffic and
TensorCore-utilization gauges (the event-derived system performance
metrics), and tails its log events.  Detectors consume these streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.cluster.health_index import use_vectorized
from repro.sim import Simulator
from repro.sim.columnar import ColumnarRing
from repro.sim.ring import RingBuffer
from repro.training.job import LogEvent, TrainingJob
from repro.training.metrics import StepMetrics


@dataclass
class GaugeSample:
    time: float
    rdma_traffic_frac: float
    tensorcore_util_frac: float


#: Column layouts for the struct-of-arrays histories.  Field order must
#: match the dataclass constructors — rows are rebuilt positionally.
_STEP_COLUMNS = (
    ("step", np.int64), ("time", np.float64), ("duration_s", np.float64),
    ("loss", np.float64), ("grad_norm", np.float64),
    ("mfu", np.float64), ("tokens", np.int64),
)
_GAUGE_COLUMNS = (
    ("time", np.float64), ("rdma_traffic_frac", np.float64),
    ("tensorcore_util_frac", np.float64),
)


@dataclass(frozen=True)
class CollectorConfig:
    #: Gauge poll cadence (RDMA counters / DCGM utilization).
    gauge_interval_s: float = 10.0
    #: Log tail cadence — bounds explicit-failure detection latency
    #: (the paper reports ~60 s detection via log indicators).
    log_interval_s: float = 30.0
    #: History retention (samples); the ring buffers drop the oldest
    #: sample once full, so month-long windows never reallocate.
    max_samples: int = 100_000


class MetricsCollector:
    """Gathers step metrics, gauges, and logs from one training job."""

    def __init__(self, sim: Simulator, job: TrainingJob,
                 config: Optional[CollectorConfig] = None):
        self.sim = sim
        self.job = job
        self.config = config or CollectorConfig()
        cap = self.config.max_samples
        # Deep histories (the default cap retains ~a month of steps) go
        # columnar: typed numpy columns instead of one dataclass per
        # row.  Below the substrate threshold — or with the substrate
        # forced scalar, as the seed baseline does — the plain
        # RingBuffer wins on constant factors and stays the reference
        # behavior.  Logs hold strings, so they stay row-oriented.
        if use_vectorized(cap):
            self.steps = ColumnarRing(
                cap, [f for f, _ in _STEP_COLUMNS],
                [d for _, d in _STEP_COLUMNS], StepMetrics)
            self.gauges = ColumnarRing(
                cap, [f for f, _ in _GAUGE_COLUMNS],
                [d for _, d in _GAUGE_COLUMNS], GaugeSample)
        else:
            self.steps = RingBuffer(cap)
            self.gauges = RingBuffer(cap)
        self.new_logs: RingBuffer = RingBuffer(cap)
        self._log_cursor = 0
        self._step_listeners: List[Callable[[StepMetrics], None]] = []
        self._gauge_listeners: List[Callable[[GaugeSample], None]] = []
        self._log_listeners: List[Callable[[LogEvent], None]] = []
        self._tasks: list = []
        job.step_listeners.append(self._on_step)

    # ------------------------------------------------------------------
    def on_step(self, fn: Callable[[StepMetrics], None]) -> None:
        self._step_listeners.append(fn)

    def on_gauge(self, fn: Callable[[GaugeSample], None]) -> None:
        self._gauge_listeners.append(fn)

    def on_log(self, fn: Callable[[LogEvent], None]) -> None:
        self._log_listeners.append(fn)

    def start(self) -> None:
        if self._tasks:
            return
        # Re-attach after a stop(); the fresh-construction attach stays
        # in __init__ so listener ordering (pinned by the equivalence
        # suite) is unchanged for the common build-then-start flow.
        if self._on_step not in self.job.step_listeners:
            self.job.step_listeners.append(self._on_step)
        # Coalesced ticks: the gauge poll shares a TickGroup (one heap
        # entry per cadence) with any other same-interval task, e.g.
        # the inspection engine's GPU sweep.
        self._tasks = [
            self.sim.every_tick(self.config.gauge_interval_s,
                                self._poll_gauges,
                                first_delay=self.config.gauge_interval_s),
            self.sim.every_tick(self.config.log_interval_s, self._poll_logs,
                                first_delay=self.config.log_interval_s),
        ]

    def stop(self) -> None:
        """Stop polling and detach from the job.

        Detaching the step subscription matters beyond hygiene: a
        stopped collector that stays subscribed keeps appending every
        later step to its history — and keeps the collector (and its
        buffers) alive for as long as the job object lives, a leak per
        stack teardown at fleet scale.
        """
        for task in self._tasks:
            task.stop()
        self._tasks = []
        try:
            self.job.step_listeners.remove(self._on_step)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # The dispatch loops copy the listener list (a listener may attach
    # or detach another mid-dispatch) but only when there is someone to
    # call: at fleet scale most collectors poll with no listeners at
    # all, and the per-poll allocation is pure overhead.
    def _on_step(self, metrics: StepMetrics) -> None:
        self.steps.append(metrics)
        if self._step_listeners:
            for fn in tuple(self._step_listeners):
                fn(metrics)

    def _poll_gauges(self) -> None:
        sample = GaugeSample(
            time=self.sim.now,
            rdma_traffic_frac=self.job.rdma_traffic_frac(),
            tensorcore_util_frac=self.job.tensorcore_util_frac())
        self.gauges.append(sample)
        if self._gauge_listeners:
            for fn in tuple(self._gauge_listeners):
                fn(sample)

    def _poll_logs(self) -> None:
        while self._log_cursor < len(self.job.log_events):
            event = self.job.log_events[self._log_cursor]
            self._log_cursor += 1
            self.new_logs.append(event)
            if self._log_listeners:
                for fn in tuple(self._log_listeners):
                    fn(event)

    # ------------------------------------------------------------------
    def recent_steps(self, count: int) -> List[StepMetrics]:
        return self.steps.recent(count)

    def gauge_window(self, window_s: float) -> List[GaugeSample]:
        # samples are appended in time order, so the window is a suffix:
        # scan from the newest backwards, O(window) not O(history)
        cutoff = self.sim.now - window_s
        return self.gauges.tail_while(lambda g: g.time >= cutoff)
