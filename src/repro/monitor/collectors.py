"""Workload metric / gauge / log collection (Sec. 4.1, "Metrics
collection").

The collector subscribes to the training job's step completions (the
wandb-style continuously observable metrics), polls its RDMA-traffic and
TensorCore-utilization gauges (the event-derived system performance
metrics), and tails its log events.  Detectors consume these streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.sim import Simulator
from repro.sim.ring import RingBuffer
from repro.training.job import LogEvent, TrainingJob
from repro.training.metrics import StepMetrics


@dataclass
class GaugeSample:
    time: float
    rdma_traffic_frac: float
    tensorcore_util_frac: float


@dataclass(frozen=True)
class CollectorConfig:
    #: Gauge poll cadence (RDMA counters / DCGM utilization).
    gauge_interval_s: float = 10.0
    #: Log tail cadence — bounds explicit-failure detection latency
    #: (the paper reports ~60 s detection via log indicators).
    log_interval_s: float = 30.0
    #: History retention (samples); the ring buffers drop the oldest
    #: sample once full, so month-long windows never reallocate.
    max_samples: int = 100_000


class MetricsCollector:
    """Gathers step metrics, gauges, and logs from one training job."""

    def __init__(self, sim: Simulator, job: TrainingJob,
                 config: Optional[CollectorConfig] = None):
        self.sim = sim
        self.job = job
        self.config = config or CollectorConfig()
        cap = self.config.max_samples
        self.steps: RingBuffer = RingBuffer(cap)
        self.gauges: RingBuffer = RingBuffer(cap)
        self.new_logs: RingBuffer = RingBuffer(cap)
        self._log_cursor = 0
        self._step_listeners: List[Callable[[StepMetrics], None]] = []
        self._gauge_listeners: List[Callable[[GaugeSample], None]] = []
        self._log_listeners: List[Callable[[LogEvent], None]] = []
        self._tasks: list = []
        job.step_listeners.append(self._on_step)

    # ------------------------------------------------------------------
    def on_step(self, fn: Callable[[StepMetrics], None]) -> None:
        self._step_listeners.append(fn)

    def on_gauge(self, fn: Callable[[GaugeSample], None]) -> None:
        self._gauge_listeners.append(fn)

    def on_log(self, fn: Callable[[LogEvent], None]) -> None:
        self._log_listeners.append(fn)

    def start(self) -> None:
        if self._tasks:
            return
        # Coalesced ticks: the gauge poll shares a TickGroup (one heap
        # entry per cadence) with any other same-interval task, e.g.
        # the inspection engine's GPU sweep.
        self._tasks = [
            self.sim.every_tick(self.config.gauge_interval_s,
                                self._poll_gauges,
                                first_delay=self.config.gauge_interval_s),
            self.sim.every_tick(self.config.log_interval_s, self._poll_logs,
                                first_delay=self.config.log_interval_s),
        ]

    def stop(self) -> None:
        for task in self._tasks:
            task.stop()
        self._tasks = []

    # ------------------------------------------------------------------
    # The dispatch loops copy the listener list (a listener may attach
    # or detach another mid-dispatch) but only when there is someone to
    # call: at fleet scale most collectors poll with no listeners at
    # all, and the per-poll allocation is pure overhead.
    def _on_step(self, metrics: StepMetrics) -> None:
        self.steps.append(metrics)
        if self._step_listeners:
            for fn in tuple(self._step_listeners):
                fn(metrics)

    def _poll_gauges(self) -> None:
        sample = GaugeSample(
            time=self.sim.now,
            rdma_traffic_frac=self.job.rdma_traffic_frac(),
            tensorcore_util_frac=self.job.tensorcore_util_frac())
        self.gauges.append(sample)
        if self._gauge_listeners:
            for fn in tuple(self._gauge_listeners):
                fn(sample)

    def _poll_logs(self) -> None:
        while self._log_cursor < len(self.job.log_events):
            event = self.job.log_events[self._log_cursor]
            self._log_cursor += 1
            self.new_logs.append(event)
            if self._log_listeners:
                for fn in tuple(self._log_listeners):
                    fn(event)

    # ------------------------------------------------------------------
    def recent_steps(self, count: int) -> List[StepMetrics]:
        return self.steps.recent(count)

    def gauge_window(self, window_s: float) -> List[GaugeSample]:
        # samples are appended in time order, so the window is a suffix:
        # scan from the newest backwards, O(window) not O(history)
        cutoff = self.sim.now - window_s
        return self.gauges.tail_while(lambda g: g.time >= cutoff)
