"""Periodic system inspections (Sec. 4.1, Table 3).

Inspection threads run at per-category intervals — network items every
30 s, GPU items every 10 s, host items every 2 s — and are free for the
GPUs (they query NIC counters, DCGM, and dmesg, not the training job).
Some items need corroboration before alerting: a switch must be
unresponsive on **two consecutive** sweeps (switches often flap and
recover), matching the paper's ``30·2`` detection time for switch-down
events.

Every anomaly becomes an :class:`InspectionEvent` with a *confidence*:

* ``HIGH``    — points at a specific machine with certainty (GPU lost,
  disk fault): the controller evicts immediately, skipping stop-time
  diagnostics;
* ``NETWORK`` — network-class events that may self-heal: the controller
  tolerates a couple within a window before evicting;
* ``WARN``    — suggestive but not damning (high temperature): used to
  corroborate MFU-decline diagnosis.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.health_index import use_vectorized
from repro.cluster.topology import Cluster
from repro.sim import Simulator


class SignalConfidence(enum.Enum):
    HIGH = "high"
    NETWORK = "network"
    WARN = "warn"


@dataclass
class InspectionEvent:
    """One anomaly surfaced by an inspection sweep."""

    time: float
    item: str                       # e.g. "gpu_lost", "switch_down"
    category: str                   # "network" | "gpu" | "host"
    confidence: SignalConfidence
    machine_ids: List[int] = field(default_factory=list)
    switch_id: Optional[int] = None

    def key(self) -> Tuple[str, Tuple[int, ...]]:
        return (self.item, tuple(self.machine_ids))


@dataclass(frozen=True)
class InspectionConfig:
    """Sweep intervals and corroboration thresholds (Table 3)."""

    network_interval_s: float = 30.0
    gpu_interval_s: float = 10.0
    host_interval_s: float = 2.0
    #: Consecutive unresponsive sweeps before a switch alert.
    switch_consecutive: int = 2
    #: Suppress duplicate events for the same (item, machines) pair for
    #: this long, so a persistent fault raises one alert, not a stream.
    dedup_window_s: float = 300.0

    def network_interval_for(self, category: str) -> float:
        """Sweep interval for a category (used by re-emit spacing)."""
        return {"network": self.network_interval_s,
                "gpu": self.gpu_interval_s,
                "host": self.host_interval_s}[category]


class InspectionEngine:
    """Runs the three inspection loops over a set of machines."""

    def __init__(self, sim: Simulator, cluster: Cluster,
                 machine_ids: Callable[[], List[int]],
                 config: Optional[InspectionConfig] = None):
        self.sim = sim
        self.cluster = cluster
        #: callable returning the machines currently worth inspecting
        #: (the job's active machines; it changes across recoveries)
        self._machine_ids = machine_ids
        self.config = config or InspectionConfig()
        self.events: List[InspectionEvent] = []
        self._listeners: List[Callable[[InspectionEvent], None]] = []
        self._switch_strikes: Dict[int, int] = {}
        self._last_emit: Dict[Tuple[str, Tuple[int, ...]], float] = {}
        self._tasks: list = []
        self._started = False
        #: category -> (cluster version, inspected ids) of the last
        #: *clean* sweep; see the fast-path note above the sweeps.
        self._clean_state: Dict[str, Tuple[int, List[int]]] = {}
        self._health_version = getattr(cluster, "health_version", None)
        #: struct-of-arrays accessor (None on cluster stubs): the
        #: vectorized sweeps pull unhealthy-candidate masks from it
        self._health_index = getattr(cluster, "health_index", None)

    def _skip_unchanged(self, category: str, ids: List[int]
                        ) -> Optional[int]:
        """Cluster version if this sweep must run, None to skip it.

        A sweep may be skipped only when the previous sweep over the
        *same machines* found every inspected component healthy and the
        cluster-wide change counter proves nothing was written since:
        a clean sweep is a pure read, so re-running it cannot emit,
        strike, or dedup anything.
        """
        version = self._health_version
        if version is None:          # cluster stub without the counter
            return -1
        ver = version()
        state = self._clean_state.get(category)
        if state is not None and state[0] == ver and state[1] == ids:
            return None
        return ver

    def _mark_clean(self, category: str, ver: int, ids: List[int],
                    clean: bool) -> None:
        if clean and ver >= 0:
            self._clean_state[category] = (ver, list(ids))
        else:
            self._clean_state.pop(category, None)

    def add_listener(self, fn: Callable[[InspectionEvent], None]) -> None:
        self._listeners.append(fn)

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        cfg = self.config
        # Coalesced ticks: each sweep joins the TickGroup for its
        # cadence, sharing one heap entry with every other task on the
        # same interval (e.g. the collector's gauge poll).
        self._tasks = [
            self.sim.every_tick(cfg.network_interval_s, self._sweep_network,
                                first_delay=cfg.network_interval_s),
            self.sim.every_tick(cfg.gpu_interval_s, self._sweep_gpu,
                                first_delay=cfg.gpu_interval_s),
            self.sim.every_tick(cfg.host_interval_s, self._sweep_host,
                                first_delay=cfg.host_interval_s),
        ]

    def stop(self) -> None:
        for task in self._tasks:
            task.stop()
        self._tasks = []
        self._started = False

    # ------------------------------------------------------------------
    def _emit(self, item: str, category: str, confidence: SignalConfidence,
              machine_ids: List[int],
              switch_id: Optional[int] = None) -> None:
        key = (item, tuple(sorted(machine_ids)))
        last = self._last_emit.get(key)
        # Network events are NOT deduplicated: the controller's
        # tolerance policy counts repeated alerts within its own window
        # (two flaps in five minutes ⇒ evict, Sec. 4.1), which requires
        # seeing each one.  But only re-emit after the component was
        # observed healthy in between — a *continuously* down NIC is one
        # event, a re-flap is a new one — approximated by requiring at
        # least one clean sweep between emissions.
        if confidence is SignalConfidence.NETWORK:
            if (last is not None and self.sim.now - last
                    < 2 * self.config.network_interval_for(category)):
                return
        elif (last is not None
              and self.sim.now - last < self.config.dedup_window_s):
            return
        self._last_emit[key] = self.sim.now
        event = InspectionEvent(
            time=self.sim.now, item=item, category=category,
            confidence=confidence, machine_ids=sorted(machine_ids),
            switch_id=switch_id)
        self.events.append(event)
        for fn in list(self._listeners):
            fn(event)

    # ------------------------------------------------------------------
    # Sweeps find their unhealthy candidates through the change-tracked
    # health state and only walk the per-component checks on machines
    # whose subsystem is actually unhealthy — a healthy machine's sweep
    # is a pure read, so skipping it cannot change any emission.  Above
    # the vectorization threshold the candidates come from one numpy
    # mask over the cluster's struct-of-arrays health index; below it,
    # from the scalar O(1) rollup per machine.  Either way unhealthy
    # machines take the exact seed code path, so event content,
    # deduplication, and ordering are byte-identical across scalar,
    # vectorized, and seed modes.
    def _unhealthy_among(self, ids: List[int], subsystem: str
                         ) -> List[int]:
        """Ids (in input order) whose subsystem rollup is unhealthy."""
        if self._health_index is not None and use_vectorized(len(ids)):
            return self._health_index().unhealthy(ids, subsystem)
        machines = self.cluster.machines
        return [mid for mid in ids
                if not getattr(machines[mid].component_health(),
                               subsystem)]

    def _switches_first_seen(self, ids: List[int]
                             ) -> List[Tuple[int, bool]]:
        """``(switch_id, up)`` in first-appearance order over ``ids``."""
        if self._health_index is not None and use_vectorized(len(ids)):
            return self._health_index().switches_first_seen(ids)
        machines = self.cluster.machines
        switches = self.cluster.switches
        seen: Dict[int, bool] = {}
        for mid in ids:
            sw = switches[machines[mid].switch_id]
            if sw.id not in seen:
                seen[sw.id] = sw.up
        return list(seen.items())

    def _sweep_network(self) -> None:
        ids = self._machine_ids()
        ver = self._skip_unchanged("network", ids)
        if ver is None:
            return
        machines = self.cluster.machines
        unhealthy = self._unhealthy_among(ids, "nics_ok")
        clean = not unhealthy
        for mid in unhealthy:
            machine = machines[mid]
            if any(not nic.up for nic in machine.nics):
                self._emit("nic_crash", "network",
                           SignalConfidence.NETWORK, [mid])
            if any(nic.flapping or nic.packet_loss_rate
                   >= nic.FLAP_LOSS_THRESHOLD for nic in machine.nics):
                self._emit("port_flapping", "network",
                           SignalConfidence.NETWORK, [mid])
        switches_seen = self._switches_first_seen(ids)
        if any(not up for _, up in switches_seen):
            clean = False
        self._mark_clean("network", ver, ids, clean)
        for sw_id, up in switches_seen:
            if up:
                self._switch_strikes.pop(sw_id, None)
                continue
            strikes = self._switch_strikes.get(sw_id, 0) + 1
            self._switch_strikes[sw_id] = strikes
            if strikes >= self.config.switch_consecutive:
                affected = [m.id for m in
                            self.cluster.machines_on_switch(sw_id)
                            if m.id in set(self._machine_ids())]
                self._emit("switch_down", "network",
                           SignalConfidence.NETWORK, affected,
                           switch_id=sw_id)

    def _sweep_gpu(self) -> None:
        ids = self._machine_ids()
        ver = self._skip_unchanged("gpu", ids)
        if ver is None:
            return
        machines = self.cluster.machines
        unhealthy = self._unhealthy_among(ids, "gpus_ok")
        clean = not unhealthy
        for mid in unhealthy:
            machine = machines[mid]
            for gpu in machine.gpus:
                if not gpu.available:
                    self._emit("gpu_lost", "gpu", SignalConfidence.HIGH,
                               [mid])
                elif gpu.driver_hung:
                    self._emit("gpu_driver_hang", "gpu",
                               SignalConfidence.HIGH, [mid])
                elif not gpu.dcgm_healthy:
                    self._emit("dcgm_unhealthy", "gpu",
                               SignalConfidence.HIGH, [mid])
                elif gpu.hbm_faulty or gpu.pending_row_remaps >= 8:
                    self._emit("gpu_memory_error", "gpu",
                               SignalConfidence.HIGH, [mid])
                elif gpu.overheating:
                    self._emit("gpu_high_temperature", "gpu",
                               SignalConfidence.WARN, [mid])
                elif gpu.pcie_bandwidth_frac < 0.8:
                    self._emit("pcie_degraded", "gpu",
                               SignalConfidence.WARN, [mid])
        self._mark_clean("gpu", ver, ids, clean)

    def _sweep_host(self) -> None:
        ids = self._machine_ids()
        ver = self._skip_unchanged("host", ids)
        if ver is None:
            return
        machines = self.cluster.machines
        unhealthy = self._unhealthy_among(ids, "host_ok")
        clean = not unhealthy
        for mid in unhealthy:
            host = machines[mid].host
            if host.kernel_panic:
                self._emit("os_kernel_fault", "host", SignalConfidence.HIGH,
                           [mid])
            elif host.disk_faulty:
                self._emit("disk_fault", "host", SignalConfidence.HIGH,
                           [mid])
            elif not host.fs_mounted:
                self._emit("filesystem_mount", "host",
                           SignalConfidence.HIGH, [mid])
            elif not host.container_healthy:
                self._emit("container_error", "host",
                           SignalConfidence.HIGH, [mid])
            elif host.disk_free_gb <= host.DISK_MIN_FREE_GB:
                self._emit("insufficient_disk_space", "host",
                           SignalConfidence.HIGH, [mid])
            elif host.mem_used_frac >= host.MEM_OOM_FRAC:
                self._emit("cpu_oom", "host", SignalConfidence.HIGH, [mid])
            elif host.cpu_load_frac >= host.CPU_OVERLOAD_FRAC:
                self._emit("cpu_overload", "host", SignalConfidence.WARN,
                           [mid])
        self._mark_clean("host", ver, ids, clean)
