"""Anomaly rules over collected metrics (Sec. 4.1).

Detectors turn raw streams into actionable anomalies:

* ``NAN_METRIC``   — loss or gradient norm is NaN;
* ``LOSS_SPIKE``   — loss (or grad norm) jumped ≥ 5x the trailing median;
* ``HANG_SUSPECT`` — RDMA traffic has been ~zero for a sustained window
  while the job should be communicating (the MegaScale-style signal the
  paper adopts, with a 10-minute production default);
* ``MFU_DECLINE``  — TensorCore utilization / MFU sagged well below the
  recent baseline for a sustained window;
* ``USER_SPACE_ERROR`` / ``CRASH_NO_CULPRIT`` — log-derived crash
  classification: recognizably user-space tracebacks trigger rollback,
  anything else goes to stop-time checks (Fig. 5 steps 2/3).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from statistics import median
from typing import Callable, List, Optional

from repro.monitor.collectors import GaugeSample, MetricsCollector
from repro.sim import Simulator
from repro.training.job import LogEvent
from repro.training.metrics import StepMetrics

#: Log substrings that identify user-space (rollback-able) errors.
USER_SPACE_SIGNATURES = (
    "TypeError", "IndexError", "KeyError", "AttributeError",
    "ValueError", "AssertionError", "size mismatch",
)


class AnomalyKind(enum.Enum):
    NAN_METRIC = "nan_metric"
    LOSS_SPIKE = "loss_spike"
    HANG_SUSPECT = "hang_suspect"
    MFU_DECLINE = "mfu_decline"
    USER_SPACE_ERROR = "user_space_error"
    CRASH_NO_CULPRIT = "crash_no_culprit"
    CRASH_WITH_MACHINES = "crash_with_machines"


@dataclass
class AnomalyEvent:
    time: float
    kind: AnomalyKind
    detail: str = ""
    machine_ids: List[int] = field(default_factory=list)
    log_event: Optional[LogEvent] = None


@dataclass(frozen=True)
class DetectorConfig:
    #: Spike threshold relative to trailing median (paper: 5x).
    spike_factor: float = 5.0
    #: Steps of history used for the trailing median.
    spike_history: int = 32
    #: RDMA ≈ 0 for this long ⇒ hang suspicion (paper default 600 s;
    #: kept configurable so simulations can tighten it).
    hang_zero_rdma_s: float = 600.0
    #: Gauge level treated as "zero" traffic.
    zero_traffic_frac: float = 0.02
    #: Sustained utilization below this fraction of baseline ⇒ decline.
    mfu_decline_frac: float = 0.75
    #: Window the decline must persist for.
    mfu_decline_window_s: float = 120.0


class AnomalyDetector:
    """Subscribes to a collector and emits :class:`AnomalyEvent`s."""

    def __init__(self, sim: Simulator, collector: MetricsCollector,
                 config: Optional[DetectorConfig] = None):
        self.sim = sim
        self.collector = collector
        self.config = config or DetectorConfig()
        self.anomalies: List[AnomalyEvent] = []
        self._listeners: List[Callable[[AnomalyEvent], None]] = []
        self._loss_history: List[float] = []
        self._zero_rdma_since: Optional[float] = None
        self._low_mfu_since: Optional[float] = None
        self._hang_reported = False
        self._decline_reported = False
        collector.on_step(self._on_step)
        collector.on_gauge(self._on_gauge)
        collector.on_log(self._on_log)

    def add_listener(self, fn: Callable[[AnomalyEvent], None]) -> None:
        self._listeners.append(fn)

    def reset_episode(self) -> None:
        """Forget hang/decline latches after a recovery."""
        self._zero_rdma_since = None
        self._low_mfu_since = None
        self._hang_reported = False
        self._decline_reported = False

    def _emit(self, kind: AnomalyKind, detail: str = "",
              machine_ids: Optional[List[int]] = None,
              log_event: Optional[LogEvent] = None) -> None:
        event = AnomalyEvent(time=self.sim.now, kind=kind, detail=detail,
                             machine_ids=machine_ids or [],
                             log_event=log_event)
        self.anomalies.append(event)
        for fn in list(self._listeners):
            fn(event)

    # ------------------------------------------------------------------
    def _on_step(self, metrics: StepMetrics) -> None:
        if math.isnan(metrics.loss) or math.isnan(metrics.grad_norm):
            self._emit(AnomalyKind.NAN_METRIC,
                       detail=f"NaN at step {metrics.step}")
            return
        if len(self._loss_history) >= 8:
            baseline = median(self._loss_history[-self.config.spike_history:])
            if metrics.loss >= self.config.spike_factor * baseline:
                self._emit(AnomalyKind.LOSS_SPIKE,
                           detail=(f"loss {metrics.loss:.3f} vs median "
                                   f"{baseline:.3f} at step {metrics.step}"))
        self._loss_history.append(metrics.loss)
        if len(self._loss_history) > 4 * self.config.spike_history:
            del self._loss_history[:self.config.spike_history]

    def _on_gauge(self, sample: GaugeSample) -> None:
        cfg = self.config
        # hang: traffic pinned at ~zero
        if sample.rdma_traffic_frac <= cfg.zero_traffic_frac:
            if self._zero_rdma_since is None:
                self._zero_rdma_since = sample.time
            elif (not self._hang_reported
                  and sample.time - self._zero_rdma_since
                  >= cfg.hang_zero_rdma_s):
                self._hang_reported = True
                self._emit(AnomalyKind.HANG_SUSPECT,
                           detail=(f"zero RDMA traffic for "
                                   f"{sample.time - self._zero_rdma_since:.0f}s"))
        else:
            self._zero_rdma_since = None
            self._hang_reported = False
        # fail-slow: utilization sagging but not zero
        low = (cfg.zero_traffic_frac < sample.tensorcore_util_frac
               < cfg.mfu_decline_frac)
        if low:
            if self._low_mfu_since is None:
                self._low_mfu_since = sample.time
            elif (not self._decline_reported
                  and sample.time - self._low_mfu_since
                  >= cfg.mfu_decline_window_s):
                self._decline_reported = True
                self._emit(AnomalyKind.MFU_DECLINE,
                           detail=(f"tensorcore util "
                                   f"{sample.tensorcore_util_frac:.2f}"))
        else:
            self._low_mfu_since = None
            self._decline_reported = False

    def _on_log(self, event: LogEvent) -> None:
        if event.level != "error":
            return
        if any(sig in event.message for sig in USER_SPACE_SIGNATURES):
            self._emit(AnomalyKind.USER_SPACE_ERROR, detail=event.message,
                       log_event=event)
        elif event.machine_ids:
            self._emit(AnomalyKind.CRASH_WITH_MACHINES,
                       detail=event.message,
                       machine_ids=list(event.machine_ids),
                       log_event=event)
        else:
            self._emit(AnomalyKind.CRASH_NO_CULPRIT, detail=event.message,
                       log_event=event)
