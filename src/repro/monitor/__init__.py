"""Real-time monitoring (the data plane's Monitor module, Sec. 4.1).

Three layers, mirroring the paper:

* :mod:`repro.monitor.inspections` — lightweight periodic system
  inspections (network / GPU / host) with per-item intervals and
  consecutive-event thresholds (Table 3);
* :mod:`repro.monitor.collectors` — collection of workload metrics
  (loss, grad norm, MFU), gauges (RDMA traffic, TensorCore
  utilization), and stdout/stderr log events;
* :mod:`repro.monitor.detectors` — anomaly rules over the collected
  streams: NaN values, 5x loss/grad-norm spikes, zero-RDMA hang
  suspicion, sustained MFU decline.
"""

from repro.monitor.inspections import (
    InspectionConfig,
    InspectionEngine,
    InspectionEvent,
    SignalConfidence,
)
from repro.monitor.collectors import MetricsCollector
from repro.monitor.detectors import AnomalyDetector, AnomalyEvent, AnomalyKind

__all__ = [
    "AnomalyDetector",
    "AnomalyEvent",
    "AnomalyKind",
    "InspectionConfig",
    "InspectionEngine",
    "InspectionEvent",
    "MetricsCollector",
    "SignalConfidence",
]
