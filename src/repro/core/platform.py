"""Multi-job platform: several managed training jobs on one fleet.

ByteRobust manages an entire GPU platform (778,135 jobs over three
months, Table 1), not a single run.  The :class:`TrainingPlatform`
stands up N independently-managed jobs — each with its own monitor,
controller, analyzer, and checkpoint engine — sharing one cluster, one
machine pool, and one warm-standby reserve.  Evictions from any job
compete for the same standbys, which is exactly the contention the P99
pool sizing is meant to absorb.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.agent.tracer import OnDemandTracer
from repro.analyzer.aggregation import RuntimeAnalyzer
from repro.cluster.components import MachineSpec
from repro.cluster.faults import FaultInjector
from repro.cluster.pool import MachinePool
from repro.cluster.topology import Cluster, ClusterSpec
from repro.controller.controller import ControllerConfig, RobustController
from repro.controller.hotupdate import HotUpdateManager
from repro.controller.policy import RecoveryPolicy
from repro.controller.standby import StandbyPolicy
from repro.core.ettr import EttrTracker
from repro.core.incidents import IncidentLog
from repro.diagnosis.diagnoser import Diagnoser
from repro.diagnosis.replay import DualPhaseReplay
from repro.monitor.collectors import CollectorConfig, MetricsCollector
from repro.monitor.detectors import AnomalyDetector, DetectorConfig
from repro.monitor.inspections import InspectionConfig, InspectionEngine
from repro.sim import RngStreams, Simulator
from repro.training.job import TrainingJob, TrainingJobConfig
from repro.training.metrics import CodeVersionProfile, MfuModel


@dataclass
class ManagedJob:
    """One job plus its dedicated management stack."""

    name: str
    job: TrainingJob
    collector: MetricsCollector
    detector: AnomalyDetector
    inspections: InspectionEngine
    controller: RobustController
    incident_log: IncidentLog
    tracer: OnDemandTracer


@dataclass
class PlatformConfig:
    """Fleet-level knobs."""

    seed: int = 0
    machine_spec: MachineSpec = field(default_factory=MachineSpec)
    machines_per_switch: int = 16
    standby: StandbyPolicy = field(default_factory=StandbyPolicy)
    detector: DetectorConfig = field(
        default_factory=lambda: DetectorConfig(hang_zero_rdma_s=300.0))
    inspections: InspectionConfig = field(default_factory=InspectionConfig)
    policy: RecoveryPolicy = field(default_factory=RecoveryPolicy)
    controller: ControllerConfig = field(default_factory=ControllerConfig)


class TrainingPlatform:
    """N managed jobs sharing one cluster and one standby pool."""

    def __init__(self, total_machines: int,
                 config: Optional[PlatformConfig] = None):
        self.config = config or PlatformConfig()
        self.sim = Simulator()
        self.rng = RngStreams(self.config.seed)
        self.cluster = Cluster(ClusterSpec(
            num_machines=total_machines,
            machine_spec=self.config.machine_spec,
            machines_per_switch=self.config.machines_per_switch))
        self.injector = FaultInjector(self.sim, self.cluster)
        self.pool = MachinePool(self.sim, self.cluster)
        self.jobs: Dict[str, ManagedJob] = {}
        self._started = False

    # ------------------------------------------------------------------
    def add_job(self, name: str, job_config: TrainingJobConfig,
                initial_mfu: float = 0.30) -> ManagedJob:
        """Register a job; machines are allocated at :meth:`start`."""
        if self._started:
            raise RuntimeError("platform already started")
        if name in self.jobs:
            raise ValueError(f"duplicate job name {name!r}")
        job = TrainingJob(
            self.sim, job_config, injector=self.injector,
            mfu_model=MfuModel(CodeVersionProfile("v0", initial_mfu)))
        collector = MetricsCollector(self.sim, job, CollectorConfig())
        detector = AnomalyDetector(self.sim, collector,
                                   self.config.detector)
        inspections = InspectionEngine(
            self.sim, self.cluster, lambda j=job: j.machines,
            self.config.inspections)
        tracer = OnDemandTracer(self.sim, job)
        incident_log = IncidentLog()
        controller = RobustController(
            self.sim, job, self.pool, self.injector,
            Diagnoser(self.cluster, self.rng.fork(f"diag:{name}")),
            DualPhaseReplay(self.cluster, self.rng.fork(f"replay:{name}")),
            RuntimeAnalyzer(job.topology), tracer,
            HotUpdateManager(self.sim),
            standby_policy=self.config.standby,
            detector=detector, policy=self.config.policy,
            incident_log=incident_log, config=self.config.controller)
        detector.add_listener(controller.on_anomaly)
        inspections.add_listener(controller.on_inspection_event)
        managed = ManagedJob(
            name=name, job=job, collector=collector, detector=detector,
            inspections=inspections, controller=controller,
            incident_log=incident_log, tracer=tracer)
        self.jobs[name] = managed
        return managed

    def start(self) -> None:
        """Allocate machines to every job and launch everything."""
        if self._started:
            raise RuntimeError("platform already started")
        self._started = True
        total_needed = sum(m.job.num_machines for m in self.jobs.values())
        if total_needed > len(self.cluster.machines):
            raise ValueError(
                f"jobs need {total_needed} machines, cluster has "
                f"{len(self.cluster.machines)}")
        for managed in self.jobs.values():
            machines = self.pool.allocate_active(managed.job.num_machines)
            managed.job.bind_machines(machines)
            managed.collector.start()
            managed.inspections.start()
            managed.job.start()
        # one shared standby reserve sized for the whole active fleet
        target = self.config.standby.standby_count(len(self.pool.active))
        available = len(self.pool.free - self.pool.blacklist)
        if available > 0:
            self.pool.provision_standbys(min(target, available))

    def run_until(self, t: float) -> None:
        self.sim.run(until=t)

    # ------------------------------------------------------------------
    def fleet_report(self, run_end: Optional[float] = None) -> dict:
        """Platform-wide rollup across all jobs."""
        end = run_end if run_end is not None else self.sim.now
        tracker = EttrTracker()
        jobs = {}
        total_incidents = 0
        for name, managed in self.jobs.items():
            ettr = tracker.cumulative_at(managed.job.step_records, end)
            resolved = managed.incident_log.resolved()
            total_incidents += len(resolved)
            jobs[name] = {
                "cumulative_ettr": ettr,
                "final_step": managed.job.current_step,
                "incidents": len(resolved),
                "state": managed.job.state.value,
            }
        return {
            "wall_time_s": end,
            "jobs": jobs,
            "total_incidents": total_incidents,
            "pool": self.pool.counts(),
            "standby_idle_machine_seconds":
                self.pool.standby_idle_machine_seconds,
        }
