"""Multi-job platform: a fleet-scale control plane over one cluster.

ByteRobust manages an entire GPU platform (778,135 jobs over three
months, Table 1), not a single run.  The :class:`TrainingPlatform`
runs many independently-managed jobs — each with its own monitor,
controller, analyzer and incident log, all built through the shared
:func:`~repro.controller.stack.build_management_stack` — on one
cluster, one machine pool, and one warm-standby reserve.

Jobs are *dynamic*: :meth:`submit` is legal at any simulated time, a
:class:`~repro.cluster.scheduler.FleetScheduler` queues requests that
do not fit and starts them (priority order, optional backfill) when
capacity frees, and jobs with a planned ``duration_s`` complete on
their own, returning their machines to the pool for whoever queues
next.  Evictions from any job compete for the same standbys, which is
exactly the contention the P99 pool sizing is meant to absorb.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.agent.tracer import OnDemandTracer
from repro.cluster.components import MachineSpec
from repro.cluster.faults import FaultInjector
from repro.cluster.placement import make_placement_policy
from repro.cluster.pool import MachinePool
from repro.cluster.scheduler import FleetScheduler, JobRequest
from repro.cluster.topology import Cluster, ClusterSpec
from repro.controller.controller import ControllerConfig, RobustController
from repro.controller.policy import RecoveryPolicy
from repro.controller.stack import (
    ManagementStack,
    StackConfig,
    build_management_stack,
)
from repro.controller.standby import (
    StandbyPolicy,
    StandbyResizeConfig,
    StandbyResizer,
)
from repro.core.ettr import EttrTracker
from repro.core.incidents import IncidentLog
from repro.monitor.collectors import CollectorConfig, MetricsCollector
from repro.monitor.detectors import AnomalyDetector, DetectorConfig
from repro.monitor.inspections import InspectionConfig, InspectionEngine
from repro.sim import RngStreams, Simulator
from repro.training.job import TrainingJob, TrainingJobConfig
from repro.training.metrics import CodeVersionProfile


@dataclass
class ManagedJob:
    """One job plus its dedicated management stack and lifecycle."""

    name: str
    stack: ManagementStack
    priority: int = 0
    #: planned runtime; None = runs until the simulation horizon
    duration_s: Optional[float] = None
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    completed_at: Optional[float] = None
    #: True for legacy :meth:`TrainingPlatform.add_job` registrations,
    #: which must all be placeable at start() (strict co-scheduling)
    static: bool = False

    # -- convenience passthroughs (the pre-scheduler ManagedJob API) --
    @property
    def job(self) -> TrainingJob:
        return self.stack.job

    @property
    def collector(self) -> MetricsCollector:
        return self.stack.collector

    @property
    def detector(self) -> AnomalyDetector:
        return self.stack.detector

    @property
    def inspections(self) -> InspectionEngine:
        return self.stack.inspections

    @property
    def controller(self) -> RobustController:
        return self.stack.controller

    @property
    def incident_log(self) -> IncidentLog:
        return self.stack.incident_log

    @property
    def tracer(self) -> OnDemandTracer:
        return self.stack.tracer

    # -- lifecycle queries --------------------------------------------
    @property
    def queued(self) -> bool:
        return self.started_at is None

    @property
    def running(self) -> bool:
        return self.started_at is not None and self.completed_at is None

    @property
    def completed(self) -> bool:
        return self.completed_at is not None

    @property
    def lifecycle(self) -> str:
        if self.completed:
            return "completed"
        return "queued" if self.queued else "running"

    @property
    def wait_seconds(self) -> Optional[float]:
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at


@dataclass
class PlatformConfig:
    """Fleet-level knobs."""

    seed: int = 0
    machine_spec: MachineSpec = field(default_factory=MachineSpec)
    machines_per_switch: int = 16
    standby: StandbyPolicy = field(default_factory=StandbyPolicy)
    collector: CollectorConfig = field(default_factory=CollectorConfig)
    detector: DetectorConfig = field(
        default_factory=lambda: DetectorConfig(hang_zero_rdma_s=300.0))
    inspections: InspectionConfig = field(default_factory=InspectionConfig)
    policy: RecoveryPolicy = field(default_factory=RecoveryPolicy)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    #: let smaller queued jobs start past a blocked head-of-queue job
    backfill: bool = True
    #: how often a blocked queue re-checks for freed capacity
    scheduler_retry_s: float = 60.0
    #: which free machines an allocation gets: "any-free" (baseline,
    #: lowest ids first), "pack" (fewest leaf switches) or "spread"
    #: (stripe across switches) — see :mod:`repro.cluster.placement`
    placement: str = "any-free"
    #: elastic standby resizing: target warm standbys per active
    #: machine, re-evaluated periodically with hysteresis.  0 keeps
    #: the historical one-shot sizing at :meth:`start`.
    standby_target: float = 0.0
    #: seconds between elastic resize evaluations
    standby_resize_s: float = 900.0
    #: resize deadband in machines (suppresses provisioning churn)
    standby_hysteresis: int = 1


class TrainingPlatform:
    """Dynamic managed jobs sharing one cluster and one standby pool."""

    def __init__(self, total_machines: int,
                 config: Optional[PlatformConfig] = None):
        self.config = config or PlatformConfig()
        self.sim = Simulator()
        self.rng = RngStreams(self.config.seed)
        self.cluster = Cluster(ClusterSpec(
            num_machines=total_machines,
            machine_spec=self.config.machine_spec,
            machines_per_switch=self.config.machines_per_switch))
        self.injector = FaultInjector(self.sim, self.cluster)
        self.pool = MachinePool(
            self.sim, self.cluster,
            placement=make_placement_policy(self.config.placement))
        self.pool.on_repair = self.injector.clear_machine
        self.scheduler = FleetScheduler(
            self.sim, self.pool, start=self._on_dispatch,
            backfill=self.config.backfill,
            retry_interval_s=self.config.scheduler_retry_s)
        self.jobs: Dict[str, ManagedJob] = {}
        self._started = False
        #: standby provisioning outcome at start() (satellite: the
        #: silent cap became a recorded shortfall)
        self.standby_target = 0
        self.standby_provisioned = 0
        #: shared elastic resizer (one pool, one resizer) — built at
        #: :meth:`start` when ``config.standby_target`` > 0
        self.resizer: Optional[StandbyResizer] = None

    # ------------------------------------------------------------------
    # job intake
    # ------------------------------------------------------------------
    def _build_stack(self, name: str, job_config: TrainingJobConfig,
                     initial_mfu: float) -> ManagementStack:
        return build_management_stack(
            self.sim, self.cluster, self.pool, self.injector, job_config,
            diag_rng=self.rng.fork(f"diag:{name}"),
            replay_rng=self.rng.fork(f"replay:{name}"),
            config=StackConfig(
                collector=self.config.collector,
                detector=self.config.detector,
                inspections=self.config.inspections,
                standby=self.config.standby,
                policy=self.config.policy,
                controller=self.config.controller,
                initial_code_profile=CodeVersionProfile(
                    "v0", initial_mfu)))

    def submit(self, name: str, job_config: TrainingJobConfig,
               priority: int = 0, duration_s: Optional[float] = None,
               initial_mfu: float = 0.30) -> ManagedJob:
        """Submit a job at any simulated time.

        Before :meth:`start` the request just queues; afterwards the
        scheduler places it immediately if capacity allows, or parks it
        until machines free up (higher ``priority`` jumps the queue;
        smaller jobs may backfill).  ``duration_s`` gives the job a
        planned runtime after which it completes and returns its
        machines.  Raises
        :class:`~repro.cluster.scheduler.AdmissionError` for requests
        larger than the whole cluster.
        """
        if name in self.jobs:
            raise ValueError(f"duplicate job name {name!r}")
        needed = (job_config.parallelism.world_size
                  // job_config.parallelism.gpus_per_machine)
        self.scheduler.check_admission(name, needed)
        stack = self._build_stack(name, job_config, initial_mfu)
        managed = ManagedJob(name=name, stack=stack, priority=priority,
                             duration_s=duration_s,
                             submitted_at=self.sim.now)
        self.jobs[name] = managed
        if self._started:
            self.scheduler.submit(name, stack.job.num_machines,
                                  priority=priority,
                                  duration_s=duration_s)
        return managed

    def add_job(self, name: str, job_config: TrainingJobConfig,
                initial_mfu: float = 0.30) -> ManagedJob:
        """Legacy strict registration: the job *must* run from t=0.

        All ``add_job`` jobs are co-scheduled at :meth:`start`, which
        raises if they cannot all be placed at once.  Use
        :meth:`submit` for queue-tolerant, dynamic arrivals.
        """
        if self._started:
            raise RuntimeError("platform already started")
        managed = self.submit(name, job_config, initial_mfu=initial_mfu)
        managed.static = True
        return managed

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Dispatch every pre-submitted job and provision standbys."""
        if self._started:
            raise RuntimeError("platform already started")
        static_needed = sum(m.job.num_machines
                            for m in self.jobs.values() if m.static)
        if static_needed > len(self.cluster.machines):
            raise ValueError(
                f"jobs need {static_needed} machines, cluster has "
                f"{len(self.cluster.machines)}")
        self._started = True
        # enqueue the whole pre-start batch, then dispatch once, so
        # priority order holds across it (per-job submit() would let
        # an earlier low-priority job grab capacity first)
        for managed in self.jobs.values():
            self.scheduler.enqueue(managed.name,
                                   managed.job.num_machines,
                                   priority=managed.priority,
                                   duration_s=managed.duration_s)
        self.scheduler.dispatch()
        unplaced = [m.name for m in self.jobs.values()
                    if m.static and m.queued]
        if unplaced:
            # add_job's contract is strict co-scheduling from t=0; a
            # dynamic pre-start submission (or a higher-priority job)
            # holding the machines breaks it loudly, not silently
            raise ValueError(
                f"add_job jobs {unplaced} could not all be placed at "
                f"start(); use submit() for queue-tolerant jobs")
        # one shared standby reserve sized for the whole active fleet;
        # a capacity-capped provisioning is recorded, not dropped
        self.standby_target = self.config.standby.standby_count(
            len(self.pool.active))
        available = len(self.pool.free - self.pool.blacklist)
        self.standby_provisioned = min(self.standby_target, available)
        if self.standby_provisioned > 0:
            self.pool.provision_standbys(self.standby_provisioned)
        if self.config.standby_target > 0:
            # elastic mode: a shared periodic resizer keeps the warm
            # pool matched to the *current* active fleet from here on
            self.resizer = StandbyResizer(
                self.sim, self.pool, sizing=self.config.standby,
                config=StandbyResizeConfig(
                    target_ratio=self.config.standby_target,
                    interval_s=self.config.standby_resize_s,
                    hysteresis=self.config.standby_hysteresis,
                    min_standbys=self.config.standby.min_standbys))
            self.resizer.start()

    def _on_dispatch(self, request: JobRequest,
                     machines: List[int]) -> None:
        managed = self.jobs[request.name]
        managed.started_at = self.sim.now
        managed.stack.launch(machines)
        if managed.duration_s is not None:
            self.sim.schedule(
                managed.duration_s,
                lambda m=managed: self._complete(m))

    def _complete(self, managed: ManagedJob) -> None:
        """Planned completion: tear the job down, return machines."""
        if managed.completed:
            return
        managed.completed_at = self.sim.now
        managed.stack.shutdown()
        # release only machines this job still owns: evicted ones are
        # in repair (not ACTIVE); a repaired machine re-allocated to a
        # running job — or acquired by another job's in-flight
        # recovery and not yet bound — must stay with its new owner
        others = set()
        for other in self.jobs.values():
            if other is managed:
                continue
            others.update(other.controller.pending_replacements)
            if other.running:
                others.update(other.job.machines)
        self.pool.release([m for m in managed.job.machines
                           if m in self.pool.active and m not in others])
        self.scheduler.complete(managed.name)

    def run_until(self, t: float) -> None:
        self.sim.run(until=t)

    # ------------------------------------------------------------------
    def fleet_report(self, run_end: Optional[float] = None) -> dict:
        """Platform-wide rollup across all jobs (JSON-safe)."""
        end = run_end if run_end is not None else self.sim.now
        tracker = EttrTracker()
        jobs = {}
        total_incidents = 0
        completed = 0
        for name, managed in sorted(self.jobs.items()):
            job_end = (managed.completed_at
                       if managed.completed_at is not None else end)
            # ETTR over the job's own runtime: a job that queued for a
            # day and then trained cleanly is a scheduler story, not a
            # robustness one
            job_start = (managed.started_at
                         if managed.started_at is not None else job_end)
            ettr = tracker.cumulative_at(managed.job.step_records,
                                         job_end, run_start=job_start)
            resolved = managed.incident_log.resolved()
            total_incidents += len(resolved)
            completed += 1 if managed.completed else 0
            # blast-radius shape of the (last) placement: how many
            # leaf switches the job's machines hang off
            span = (self.cluster.switch_span(managed.job.machines)
                    if managed.started_at is not None
                    and managed.job.machines else None)
            jobs[name] = {
                "switch_span": (int(span) if span is not None else None),
                "cumulative_ettr": float(ettr),
                "final_step": int(managed.job.current_step),
                "incidents": len(resolved),
                "state": managed.job.state.value,
                "lifecycle": managed.lifecycle,
                "priority": int(managed.priority),
                "num_machines": int(managed.job.num_machines),
                "submitted_at": float(managed.submitted_at),
                "started_at": (float(managed.started_at)
                               if managed.started_at is not None
                               else None),
                "completed_at": (float(managed.completed_at)
                                 if managed.completed_at is not None
                                 else None),
                "wait_s": (float(managed.wait_seconds)
                           if managed.wait_seconds is not None
                           else None),
            }
        waits = [j["wait_s"] for j in jobs.values()
                 if j["wait_s"] is not None]
        return {
            "wall_time_s": float(end),
            "jobs": jobs,
            "total_incidents": total_incidents,
            "jobs_submitted": len(self.jobs),
            "jobs_completed": completed,
            "jobs_queued": len(self.scheduler.queue),
            "mean_wait_s": (sum(waits) / len(waits)) if waits else 0.0,
            "scheduler": {k: int(v)
                          for k, v in sorted(self.scheduler.stats.items())},
            "pool": self.pool.counts(),
            "placement": str(self.pool.placement.name),
            "standby": {
                "target": int(self.standby_target),
                "provisioned": int(self.standby_provisioned),
                "shortfall": int(self.standby_target
                                 - self.standby_provisioned),
                "current": int(self.pool.standby_count),
                "resizer": (self.resizer.report()
                            if self.resizer is not None
                            else {"enabled": False}),
            },
            "standby_idle_machine_seconds":
                float(self.pool.standby_idle_machine_seconds),
        }
