"""Multi-job platform: a fleet-scale control plane over one cluster.

ByteRobust manages an entire GPU platform (778,135 jobs over three
months, Table 1), not a single run.  The :class:`TrainingPlatform`
runs many independently-managed jobs — each with its own monitor,
controller, analyzer and incident log, all built through the shared
:func:`~repro.controller.stack.build_management_stack` — on one
cluster, one machine pool, and one warm-standby reserve.

Jobs are *dynamic*: :meth:`submit` is legal at any simulated time, a
:class:`~repro.cluster.scheduler.FleetScheduler` queues requests that
do not fit and starts them (priority order, optional backfill) when
capacity frees, and jobs with a planned ``duration_s`` complete on
their own, returning their machines to the pool for whoever queues
next.  Evictions from any job compete for the same standbys, which is
exactly the contention the P99 pool sizing is meant to absorb.

The job-lifecycle surface is the typed :class:`JobSpec` →
:class:`JobHandle` pair: :meth:`submit` accepts a spec (legacy
``submit(name, job_config, ...)`` shapes coerce through
:meth:`JobSpec.coerce`) and returns a handle exposing
:class:`HandleState`, the lifecycle event history, and wasted-work
accounting.  With ``config.preemption`` enabled the scheduler may ask
the platform to preempt a running victim — carried out at the next
checkpoint boundary (``"checkpoint"``) or immediately (``"kill"``) —
and with elastic bounds declared, to shrink/grow it through a
data-parallel topology rebind.
"""

from __future__ import annotations

import enum
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.agent.tracer import OnDemandTracer
from repro.cluster.components import MachineSpec
from repro.cluster.faults import FaultInjector
from repro.cluster.placement import make_placement_policy
from repro.cluster.pool import MachinePool
from repro.cluster.scheduler import FleetScheduler, JobRequest
from repro.cluster.topology import Cluster, ClusterSpec
from repro.controller.controller import ControllerConfig, RobustController
from repro.controller.policy import RecoveryPolicy
from repro.controller.stack import (
    ManagementStack,
    StackConfig,
    build_management_stack,
)
from repro.controller.standby import (
    StandbyPolicy,
    StandbyResizeConfig,
    StandbyResizer,
)
from repro.core.ettr import EttrTracker
from repro.core.incidents import IncidentLog
from repro.parallelism import ParallelismConfig
from repro.monitor.collectors import CollectorConfig, MetricsCollector
from repro.monitor.detectors import AnomalyDetector, DetectorConfig
from repro.monitor.inspections import InspectionConfig, InspectionEngine
from repro.sim import RngStreams, Simulator
from repro.training.job import TrainingJob, TrainingJobConfig
from repro.training.metrics import CodeVersionProfile


class HandleState(enum.Enum):
    """Lifecycle state exposed on a :class:`JobHandle`."""

    QUEUED = "queued"
    RUNNING = "running"
    PREEMPTED = "preempted"
    RESIZING = "resizing"
    DONE = "done"


@dataclass
class JobSpec:
    """Everything one job submission needs, in a single value.

    The typed intake for :meth:`TrainingPlatform.submit`: size bounds
    (``min_machines``/``max_machines`` make the job elastic),
    priority, planned runtime, and the preemption opt-out.  Legacy
    ``submit(name, job_config, ...)`` call shapes normalize through
    :meth:`coerce`, mirroring the ``SweepRequest.coerce`` pattern.
    """

    name: str
    job_config: TrainingJobConfig
    priority: int = 0
    #: planned runtime; None = runs until the simulation horizon
    duration_s: Optional[float] = None
    initial_mfu: float = 0.30
    #: elastic size bounds (None/None = fixed size): the scheduler may
    #: shrink the job to ``min_machines`` to admit higher-priority
    #: work and grow it to ``max_machines`` when capacity sits free
    min_machines: Optional[int] = None
    max_machines: Optional[int] = None
    #: False exempts the job from preemption entirely
    preemptible: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.job_config, TrainingJobConfig):
            raise TypeError("JobSpec.job_config must be a "
                            "TrainingJobConfig")

    @property
    def num_machines(self) -> int:
        return (self.job_config.parallelism.world_size
                // self.job_config.parallelism.gpus_per_machine)

    @classmethod
    def coerce(cls, spec: Union["JobSpec", str],
               job_config: Optional[TrainingJobConfig] = None,
               priority: int = 0, duration_s: Optional[float] = None,
               initial_mfu: float = 0.30,
               min_machines: Optional[int] = None,
               max_machines: Optional[int] = None,
               preemptible: bool = True) -> "JobSpec":
        """Normalize the legacy call shapes onto a spec.

        A :class:`JobSpec` passes through; passing a job config (or
        any other field) alongside one is ambiguous and rejected.  A
        bare name plus ``job_config`` builds the spec from the legacy
        keywords.
        """
        if isinstance(spec, cls):
            if job_config is not None:
                raise ValueError(
                    "job_config passed both inside the JobSpec and as "
                    "an argument; pick one")
            return spec
        if job_config is None:
            raise TypeError(
                "submit() takes a JobSpec or (name, job_config)")
        return cls(name=spec, job_config=job_config, priority=priority,
                   duration_s=duration_s, initial_mfu=initial_mfu,
                   min_machines=min_machines, max_machines=max_machines,
                   preemptible=preemptible)


@dataclass
class ManagedJob:
    """One job plus its dedicated management stack and lifecycle.

    This *is* the :class:`JobHandle` :meth:`TrainingPlatform.submit`
    returns: :attr:`state` is the lifecycle state machine
    (``QUEUED/RUNNING/PREEMPTED/RESIZING/DONE``), :attr:`events` the
    append-only lifecycle history, and
    :attr:`wasted_machine_seconds` the work thrown away by
    preemptions (progress past the checkpoint the job resumed from).
    """

    name: str
    stack: ManagementStack
    priority: int = 0
    #: planned runtime; None = runs until the simulation horizon
    duration_s: Optional[float] = None
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    completed_at: Optional[float] = None
    #: True for legacy :meth:`TrainingPlatform.add_job` registrations,
    #: which must all be placeable at start() (strict co-scheduling)
    static: bool = False
    #: elastic size bounds + preemption opt-out (the JobSpec surface)
    min_machines: Optional[int] = None
    max_machines: Optional[int] = None
    preemptible: bool = True
    #: lifecycle accounting
    preemptions: int = 0
    resumes: int = 0
    resize_events: List[dict] = field(default_factory=list)
    #: machine-seconds of progress discarded by preemptions (work past
    #: the checkpoint the job resumed from, times machines held)
    wasted_machine_seconds: float = 0.0
    #: machine-seconds actually spent holding machines, summed over
    #: running segments (excludes time parked on the queue between a
    #: preemption and its resume; resizes weight each segment by the
    #: machine count it ran at)
    busy_machine_seconds: float = 0.0
    #: step the next (re)start resumes from
    resume_step: int = 0
    #: wall-clock runtime still owed; None = open-ended
    remaining_s: Optional[float] = None
    #: append-only lifecycle event history: {"t", "event"} dicts
    events: List[dict] = field(default_factory=list)
    #: a preemption was requested; waiting for the boundary
    preempting: bool = False
    #: paused and re-queued; next dispatch is a resume
    is_preempted: bool = False
    #: an elastic resize is in flight
    is_resizing: bool = False
    #: when the current running segment started (resets on resume)
    segment_started_at: Optional[float] = None
    #: handle for the planned-completion timer (cancelled on preempt)
    _complete_handle: Optional[Any] = None

    # -- convenience passthroughs (the pre-scheduler ManagedJob API) --
    @property
    def job(self) -> TrainingJob:
        return self.stack.job

    @property
    def collector(self) -> MetricsCollector:
        return self.stack.collector

    @property
    def detector(self) -> AnomalyDetector:
        return self.stack.detector

    @property
    def inspections(self) -> InspectionEngine:
        return self.stack.inspections

    @property
    def controller(self) -> RobustController:
        return self.stack.controller

    @property
    def incident_log(self) -> IncidentLog:
        return self.stack.incident_log

    @property
    def tracer(self) -> OnDemandTracer:
        return self.stack.tracer

    # -- lifecycle queries --------------------------------------------
    @property
    def queued(self) -> bool:
        return self.started_at is None

    @property
    def running(self) -> bool:
        # a preempted job keeps its first started_at (wait accounting)
        # but holds no machines and must not read as running
        return (self.started_at is not None
                and self.completed_at is None
                and not self.is_preempted)

    @property
    def completed(self) -> bool:
        return self.completed_at is not None

    @property
    def state(self) -> HandleState:
        """The :class:`JobHandle` lifecycle state machine."""
        if self.completed:
            return HandleState.DONE
        if self.is_preempted:
            return HandleState.PREEMPTED
        if self.is_resizing:
            return HandleState.RESIZING
        if self.started_at is None:
            return HandleState.QUEUED
        return HandleState.RUNNING

    @property
    def lifecycle(self) -> str:
        if self.completed:
            return "completed"
        return "queued" if self.queued else "running"

    @property
    def wait_seconds(self) -> Optional[float]:
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at


#: The public name for what :meth:`TrainingPlatform.submit` returns.
JobHandle = ManagedJob


@dataclass
class PlatformConfig:
    """Fleet-level knobs."""

    seed: int = 0
    machine_spec: MachineSpec = field(default_factory=MachineSpec)
    machines_per_switch: int = 16
    standby: StandbyPolicy = field(default_factory=StandbyPolicy)
    collector: CollectorConfig = field(default_factory=CollectorConfig)
    detector: DetectorConfig = field(
        default_factory=lambda: DetectorConfig(hang_zero_rdma_s=300.0))
    inspections: InspectionConfig = field(default_factory=InspectionConfig)
    policy: RecoveryPolicy = field(default_factory=RecoveryPolicy)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    #: let smaller queued jobs start past a blocked head-of-queue job
    backfill: bool = True
    #: how often a blocked queue re-checks for freed capacity
    scheduler_retry_s: float = 60.0
    #: which free machines an allocation gets: "any-free" (baseline,
    #: lowest ids first), "pack" (fewest leaf switches) or "spread"
    #: (stripe across switches) — see :mod:`repro.cluster.placement`
    placement: str = "any-free"
    #: elastic standby resizing: target warm standbys per active
    #: machine, re-evaluated periodically with hysteresis.  0 keeps
    #: the historical one-shot sizing at :meth:`start`.
    standby_target: float = 0.0
    #: seconds between elastic resize evaluations
    standby_resize_s: float = 900.0
    #: resize deadband in machines (suppresses provisioning churn)
    standby_hysteresis: int = 1
    #: build the checkpoint engine into every job's stack (the
    #: carried-over ROADMAP item: threads ``StackConfig.checkpointing``
    #: through :func:`build_management_stack`)
    checkpoint: bool = False
    #: remote-persist cadence for checkpointing jobs
    remote_checkpoint_every_steps: int = 100
    #: "none" | "kill" | "checkpoint" — whether (and how) the
    #: scheduler may preempt running jobs for blocked higher-priority
    #: work: "checkpoint" drains the victim to its next step/checkpoint
    #: boundary (~zero wasted work), "kill" stops it immediately and
    #: resumes from the last *remote* checkpoint (or step 0)
    preemption: str = "none"
    #: honor elastic (min_machines, max_machines) bounds: shrink jobs
    #: for blocked higher-priority work, grow them into free capacity
    elastic: bool = True


class TrainingPlatform:
    """Dynamic managed jobs sharing one cluster and one standby pool."""

    def __init__(self, total_machines: int,
                 config: Optional[PlatformConfig] = None):
        self.config = config or PlatformConfig()
        self.sim = Simulator()
        self.rng = RngStreams(self.config.seed)
        self.cluster = Cluster(ClusterSpec(
            num_machines=total_machines,
            machine_spec=self.config.machine_spec,
            machines_per_switch=self.config.machines_per_switch))
        self.injector = FaultInjector(self.sim, self.cluster)
        self.pool = MachinePool(
            self.sim, self.cluster,
            placement=make_placement_policy(self.config.placement))
        self.pool.on_repair = self.injector.clear_machine
        self.scheduler = FleetScheduler(
            self.sim, self.pool, start=self._on_dispatch,
            backfill=self.config.backfill,
            retry_interval_s=self.config.scheduler_retry_s,
            preemption=self.config.preemption,
            preempt=(self._on_preempt_request
                     if self.config.preemption != "none" else None),
            resize=(self._on_resize_request
                    if self.config.elastic else None))
        self.jobs: Dict[str, ManagedJob] = {}
        self._started = False
        #: standby provisioning outcome at start() (satellite: the
        #: silent cap became a recorded shortfall)
        self.standby_target = 0
        self.standby_provisioned = 0
        #: shared elastic resizer (one pool, one resizer) — built at
        #: :meth:`start` when ``config.standby_target`` > 0
        self.resizer: Optional[StandbyResizer] = None

    # ------------------------------------------------------------------
    # job intake
    # ------------------------------------------------------------------
    def _build_stack(self, name: str, job_config: TrainingJobConfig,
                     initial_mfu: float) -> ManagementStack:
        return build_management_stack(
            self.sim, self.cluster, self.pool, self.injector, job_config,
            diag_rng=self.rng.fork(f"diag:{name}"),
            replay_rng=self.rng.fork(f"replay:{name}"),
            config=StackConfig(
                collector=self.config.collector,
                detector=self.config.detector,
                inspections=self.config.inspections,
                standby=self.config.standby,
                policy=self.config.policy,
                controller=self.config.controller,
                initial_code_profile=CodeVersionProfile(
                    "v0", initial_mfu),
                # the cross-group backup plan needs a peer machine, so
                # single-machine jobs run without the engine (boundary
                # preemption still works; kill falls back to step 0)
                checkpointing=(self.config.checkpoint
                               and job_config.parallelism.num_machines
                               > 1),
                remote_checkpoint_every_steps=(
                    self.config.remote_checkpoint_every_steps)))

    def submit(self, spec: Union[JobSpec, str],
               job_config: Optional[TrainingJobConfig] = None,
               priority: int = 0, duration_s: Optional[float] = None,
               initial_mfu: float = 0.30,
               min_machines: Optional[int] = None,
               max_machines: Optional[int] = None,
               preemptible: bool = True) -> JobHandle:
        """Submit a job at any simulated time; returns its handle.

        The one intake path: pass a :class:`JobSpec`, or the legacy
        ``(name, job_config, ...)`` shape which coerces into one.
        Before :meth:`start` the request just queues; afterwards the
        scheduler places it immediately if capacity allows, or parks it
        until machines free up (higher ``priority`` jumps the queue;
        smaller jobs may backfill, and with preemption/elastic bounds
        enabled, lower-priority victims may be shrunk or preempted for
        it).  ``duration_s`` gives the job a planned runtime after
        which it completes and returns its machines.  Raises
        :class:`~repro.cluster.scheduler.AdmissionError` for requests
        larger than the whole cluster or with inconsistent size
        bounds.
        """
        spec = JobSpec.coerce(spec, job_config, priority=priority,
                              duration_s=duration_s,
                              initial_mfu=initial_mfu,
                              min_machines=min_machines,
                              max_machines=max_machines,
                              preemptible=preemptible)
        if spec.name in self.jobs:
            raise ValueError(f"duplicate job name {spec.name!r}")
        self.scheduler.check_admission(spec.name, spec.num_machines)
        stack = self._build_stack(spec.name, spec.job_config,
                                  spec.initial_mfu)
        min_machines = spec.min_machines
        if min_machines is not None and stack.ckpt_manager is not None:
            # the cross-group backup plan needs a peer machine, so
            # elastic shrink keeps checkpointing jobs at two minimum
            min_machines = max(2, min_machines)
        managed = ManagedJob(name=spec.name, stack=stack,
                             priority=spec.priority,
                             duration_s=spec.duration_s,
                             submitted_at=self.sim.now,
                             min_machines=min_machines,
                             max_machines=spec.max_machines,
                             preemptible=spec.preemptible,
                             remaining_s=spec.duration_s)
        self.jobs[spec.name] = managed
        self._record(managed, "submitted")
        if self._started:
            self.scheduler.submit(spec.name, stack.job.num_machines,
                                  priority=spec.priority,
                                  duration_s=spec.duration_s,
                                  min_machines=managed.min_machines,
                                  max_machines=spec.max_machines,
                                  preemptible=spec.preemptible)
        return managed

    _warned_add_job = False

    def add_job(self, name: str, job_config: TrainingJobConfig,
                initial_mfu: float = 0.30) -> JobHandle:
        """Deprecated strict registration: the job *must* run from t=0.

        A shim over :meth:`submit`: all ``add_job`` jobs are
        co-scheduled at :meth:`start`, which raises if they cannot all
        be placed at once, and they are never preempted.  Use
        ``submit(JobSpec(...))`` for queue-tolerant, dynamic arrivals.
        """
        if not TrainingPlatform._warned_add_job:
            print("repro: TrainingPlatform.add_job() is deprecated; "
                  "use submit(JobSpec(...)) — add_job keeps strict "
                  "t=0 co-scheduling and is exempt from preemption",
                  file=sys.stderr)
            TrainingPlatform._warned_add_job = True
        if self._started:
            raise RuntimeError("platform already started")
        managed = self.submit(JobSpec(name=name, job_config=job_config,
                                      initial_mfu=initial_mfu,
                                      preemptible=False))
        managed.static = True
        return managed

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Dispatch every pre-submitted job and provision standbys."""
        if self._started:
            raise RuntimeError("platform already started")
        static_needed = sum(m.job.num_machines
                            for m in self.jobs.values() if m.static)
        if static_needed > len(self.cluster.machines):
            raise ValueError(
                f"jobs need {static_needed} machines, cluster has "
                f"{len(self.cluster.machines)}")
        self._started = True
        # enqueue the whole pre-start batch, then dispatch once, so
        # priority order holds across it (per-job submit() would let
        # an earlier low-priority job grab capacity first)
        for managed in self.jobs.values():
            self.scheduler.enqueue(managed.name,
                                   managed.job.num_machines,
                                   priority=managed.priority,
                                   duration_s=managed.duration_s,
                                   min_machines=managed.min_machines,
                                   max_machines=managed.max_machines,
                                   preemptible=(managed.preemptible
                                                and not managed.static))
        self.scheduler.dispatch()
        unplaced = [m.name for m in self.jobs.values()
                    if m.static and m.queued]
        if unplaced:
            # add_job's contract is strict co-scheduling from t=0; a
            # dynamic pre-start submission (or a higher-priority job)
            # holding the machines breaks it loudly, not silently
            raise ValueError(
                f"add_job jobs {unplaced} could not all be placed at "
                f"start(); use submit() for queue-tolerant jobs")
        # one shared standby reserve sized for the whole active fleet;
        # a capacity-capped provisioning is recorded, not dropped
        self.standby_target = self.config.standby.standby_count(
            len(self.pool.active))
        available = len(self.pool.free - self.pool.blacklist)
        self.standby_provisioned = min(self.standby_target, available)
        if self.standby_provisioned > 0:
            self.pool.provision_standbys(self.standby_provisioned)
        if self.config.standby_target > 0:
            # elastic mode: a shared periodic resizer keeps the warm
            # pool matched to the *current* active fleet from here on
            self.resizer = StandbyResizer(
                self.sim, self.pool, sizing=self.config.standby,
                config=StandbyResizeConfig(
                    target_ratio=self.config.standby_target,
                    interval_s=self.config.standby_resize_s,
                    hysteresis=self.config.standby_hysteresis,
                    min_standbys=self.config.standby.min_standbys))
            self.resizer.start()

    def _record(self, managed: ManagedJob, event: str) -> None:
        managed.events.append({"t": float(self.sim.now),
                               "event": str(event)})

    def _on_dispatch(self, request: JobRequest,
                     machines: List[int]) -> None:
        managed = self.jobs[request.name]
        if managed.is_preempted:
            # a preempted job coming off the queue resumes from its
            # last checkpoint on a fresh set of machines
            managed.is_preempted = False
            managed.resumes += 1
            managed.segment_started_at = self.sim.now
            self._record(managed, "resumed")
            managed.stack.resume(machines, at_step=managed.resume_step)
        else:
            managed.started_at = self.sim.now
            managed.segment_started_at = self.sim.now
            self._record(managed, "started")
            managed.stack.launch(machines)
        if managed.remaining_s is not None:
            managed._complete_handle = self.sim.schedule(
                managed.remaining_s,
                lambda m=managed: self._complete(m))

    def _release_machines(self, managed: ManagedJob) -> None:
        """Return ``managed``'s machines to the pool — but only the
        ones it still owns: evicted machines are in repair (not
        ACTIVE); a repaired machine re-allocated to a running job — or
        acquired by another job's in-flight recovery and not yet
        bound — must stay with its new owner."""
        others = set()
        for other in self.jobs.values():
            if other is managed:
                continue
            others.update(other.controller.pending_replacements)
            if other.running:
                others.update(other.job.machines)
        self.pool.release([m for m in managed.job.machines
                           if m in self.pool.active and m not in others])

    def _complete(self, managed: ManagedJob) -> None:
        """Planned completion: tear the job down, return machines."""
        if managed.completed:
            return
        if (managed.segment_started_at is not None
                and not managed.is_preempted):
            managed.busy_machine_seconds += (
                (self.sim.now - managed.segment_started_at)
                * managed.job.num_machines)
            managed.segment_started_at = None
        managed.completed_at = self.sim.now
        managed._complete_handle = None
        # completion beats any in-flight preemption/resize: boundary
        # listeners check these flags and become no-ops
        managed.preempting = False
        managed.is_resizing = False
        self._record(managed, "completed")
        managed.stack.shutdown()
        self._release_machines(managed)
        self.scheduler.complete(managed.name)

    # ------------------------------------------------------------------
    # preemption & elastic resize (scheduler callbacks land here)
    # ------------------------------------------------------------------
    def preempt_job(self, name: str) -> bool:
        """Externally force a preemption (e.g. spot-capacity reclaim).

        The job drains to its boundary per ``config.preemption``,
        releases its machines, and re-queues to resume from its last
        checkpoint.  Returns False when the job is not running, not
        preemptible, or preemption is disabled platform-wide.
        """
        if self.config.preemption == "none":
            return False
        request = self.scheduler.running.get(name)
        managed = self.jobs.get(name)
        if request is None or managed is None or not request.preemptible:
            return False
        if (managed.completed or managed.preempting
                or managed.is_preempted or managed.is_resizing):
            return False
        self.scheduler.note_preempting(name)
        self._on_preempt_request(request)
        return True

    def _on_preempt_request(self, request: JobRequest) -> None:
        """The scheduler picked ``request`` as a preemption victim.

        ``"checkpoint"`` mode drains the job to its next step boundary
        (the every-step checkpoint makes that boundary durable), so
        nothing is wasted; ``"kill"`` mode stops it on the spot and
        the job resumes from whatever the remote checkpoint tier still
        holds (step 0 when checkpointing is off — the kill-and-restart
        baseline).
        """
        managed = self.jobs[request.name]
        if managed.completed or managed.is_preempted or managed.preempting:
            return
        managed.preempting = True
        self._record(managed, "preempt_requested")
        if self.config.preemption == "checkpoint":
            job = managed.job
            handlers: List[Any] = []

            def on_boundary(metrics) -> None:
                job.step_listeners.remove(handlers[0])
                if managed.completed or not managed.preempting:
                    return
                self._finish_preemption(managed,
                                        resume_step=metrics.step)

            handlers.append(on_boundary)
            job.step_listeners.append(on_boundary)
        else:
            # kill: immediate, but after the current dispatch event so
            # the scheduler's plan executes atomically
            self.sim.schedule(
                0.0, lambda m=managed: self._finish_preemption(m))

    def _finish_preemption(self, managed: ManagedJob,
                           resume_step: Optional[int] = None) -> None:
        """Carry out a planned preemption: pause the stack, account
        the wasted work, release the machines, re-queue the job."""
        if managed.completed or not managed.preempting:
            return
        job = managed.job
        if resume_step is None:
            # kill mode: local/backup checkpoints die with the job's
            # machines; only the remote tier (if any) survives
            ckpt = managed.stack.ckpt_manager
            if ckpt is not None:
                resume_step = ckpt.plan_recovery(job.machines).restart_step
            else:
                resume_step = 0
        managed.preempting = False
        managed.is_preempted = True
        managed.preemptions += 1
        if managed._complete_handle is not None:
            managed._complete_handle.cancel()
            managed._complete_handle = None
        # committed progress past the resume step is wasted: the job
        # will re-run it (count before restart() marks it uncommitted)
        wasted_wall = sum(
            rec.end - rec.start for rec in job.step_records
            if rec.step > resume_step and rec.committed)
        managed.wasted_machine_seconds += wasted_wall * job.num_machines
        if managed.remaining_s is not None:
            elapsed = self.sim.now - (managed.segment_started_at
                                      if managed.segment_started_at
                                      is not None else self.sim.now)
            managed.remaining_s = max(
                1.0, managed.remaining_s - elapsed + wasted_wall)
        if managed.segment_started_at is not None:
            managed.busy_machine_seconds += (
                (self.sim.now - managed.segment_started_at)
                * job.num_machines)
            managed.segment_started_at = None
        managed.resume_step = resume_step
        self._record(managed, "preempted")
        managed.stack.pause()
        self._release_machines(managed)
        self.scheduler.preempted(managed.name, managed.remaining_s)

    def _scaled_parallelism(self, par: ParallelismConfig,
                            new_machines: int
                            ) -> Optional[ParallelismConfig]:
        """``par`` rescaled to ``new_machines`` along the dp axis, or
        None when the tp×pp layout cannot tile that machine count."""
        new_world = new_machines * par.gpus_per_machine
        if new_world % (par.tp * par.pp) != 0:
            return None
        new_dp = new_world // (par.tp * par.pp)
        if new_dp < 1:
            return None
        ep = par.ep if new_dp % par.ep == 0 else 1
        return ParallelismConfig(tp=par.tp, pp=par.pp, dp=new_dp,
                                 ep=ep,
                                 gpus_per_machine=par.gpus_per_machine)

    def _on_resize_request(self, request: JobRequest,
                           new_size: int) -> None:
        """The scheduler wants ``request`` shrunk/grown to
        ``new_size`` machines; carried out at the next step boundary
        via a data-parallel topology rebind."""
        managed = self.jobs[request.name]
        if (managed.completed or managed.preempting
                or managed.is_preempted or managed.is_resizing):
            self.scheduler.resize_aborted(request.name)
            return
        managed.is_resizing = True
        self._record(managed, "resize_requested")
        job = managed.job
        handlers: List[Any] = []

        def on_boundary(metrics) -> None:
            job.step_listeners.remove(handlers[0])
            if managed.completed or not managed.is_resizing:
                return
            self._finish_resize(managed, new_size, metrics.step)

        handlers.append(on_boundary)
        job.step_listeners.append(on_boundary)

    def _finish_resize(self, managed: ManagedJob, new_size: int,
                       step: int) -> None:
        """Rebind the job's topology to ``new_size`` machines at the
        ``step`` boundary.  Data-parallel resharding preserves all
        progress, so nothing is wasted either direction."""
        job = managed.job
        old_size = job.num_machines
        new_par = self._scaled_parallelism(job.config.parallelism,
                                           new_size)
        abort = new_par is None or new_size == old_size
        if not abort and new_size > old_size:
            # the free capacity the scheduler saw may be gone by now
            avail = len(self.pool.free - self.pool.blacklist)
            abort = avail < new_size - old_size
        if abort:
            managed.is_resizing = False
            self._record(managed, "resize_aborted")
            self.scheduler.resize_aborted(managed.name)
            return
        managed.stack.pause()
        if managed.segment_started_at is not None:
            # close the segment at the old size; the new one runs at
            # the new machine count from this boundary on
            managed.busy_machine_seconds += (
                (self.sim.now - managed.segment_started_at) * old_size)
        managed.segment_started_at = self.sim.now
        machines = list(job.machines)
        if new_size < old_size:
            keep = machines[:new_size]
            self.pool.release([m for m in machines[new_size:]
                               if m in self.pool.active])
        else:
            keep = machines + self.pool.allocate_active(
                new_size - old_size)
        managed.resize_events.append({
            "t": float(self.sim.now), "from": int(old_size),
            "to": int(new_size), "step": int(step)})
        managed.resume_step = step
        managed.stack.resize(new_par, keep, at_step=step)
        managed.is_resizing = False
        self._record(managed, "resized")
        self.scheduler.resized(managed.name, new_size)

    def run_until(self, t: float) -> None:
        self.sim.run(until=t)

    # ------------------------------------------------------------------
    def fleet_report(self, run_end: Optional[float] = None) -> dict:
        """Platform-wide rollup across all jobs (JSON-safe)."""
        end = run_end if run_end is not None else self.sim.now
        tracker = EttrTracker()
        jobs = {}
        total_incidents = 0
        completed = 0
        for name, managed in sorted(self.jobs.items()):
            job_end = (managed.completed_at
                       if managed.completed_at is not None else end)
            # ETTR over the job's own runtime: a job that queued for a
            # day and then trained cleanly is a scheduler story, not a
            # robustness one
            job_start = (managed.started_at
                         if managed.started_at is not None else job_end)
            ettr = tracker.cumulative_at(managed.job.step_records,
                                         job_end, run_start=job_start)
            resolved = managed.incident_log.resolved()
            total_incidents += len(resolved)
            completed += 1 if managed.completed else 0
            # blast-radius shape of the (last) placement: how many
            # leaf switches the job's machines hang off
            span = (self.cluster.switch_span(managed.job.machines)
                    if managed.started_at is not None
                    and managed.job.machines else None)
            busy = managed.busy_machine_seconds
            if (managed.segment_started_at is not None
                    and managed.completed_at is None
                    and not managed.is_preempted):
                # the live segment up to the report horizon
                busy += (max(0.0, end - managed.segment_started_at)
                         * managed.job.num_machines)
            jobs[name] = {
                "switch_span": (int(span) if span is not None else None),
                "cumulative_ettr": float(ettr),
                "final_step": int(managed.job.current_step),
                "incidents": len(resolved),
                "state": managed.job.state.value,
                "lifecycle": managed.lifecycle,
                "priority": int(managed.priority),
                "num_machines": int(managed.job.num_machines),
                "submitted_at": float(managed.submitted_at),
                "started_at": (float(managed.started_at)
                               if managed.started_at is not None
                               else None),
                "completed_at": (float(managed.completed_at)
                                 if managed.completed_at is not None
                                 else None),
                "wait_s": (float(managed.wait_seconds)
                           if managed.wait_seconds is not None
                           else None),
                # lifecycle accounting (JobHandle surface): "state"
                # above is the training-process state; this is the
                # handle's terminal lifecycle state
                "lifecycle_state": managed.state.value,
                "preemptions": int(managed.preemptions),
                "resumes": int(managed.resumes),
                "resize_events": [
                    {"t": float(e["t"]), "from": int(e["from"]),
                     "to": int(e["to"]), "step": int(e["step"])}
                    for e in managed.resize_events],
                "wasted_machine_seconds":
                    float(managed.wasted_machine_seconds),
                "busy_machine_seconds": float(busy),
            }
        waits = [j["wait_s"] for j in jobs.values()
                 if j["wait_s"] is not None]
        return {
            "wall_time_s": float(end),
            "jobs": jobs,
            "total_incidents": total_incidents,
            "jobs_submitted": len(self.jobs),
            "jobs_completed": completed,
            "jobs_queued": len(self.scheduler.queue),
            "mean_wait_s": (sum(waits) / len(waits)) if waits else 0.0,
            "scheduler": {k: int(v)
                          for k, v in sorted(self.scheduler.stats.items())},
            "pool": self.pool.counts(),
            "placement": str(self.pool.placement.name),
            "standby": {
                "target": int(self.standby_target),
                "provisioned": int(self.standby_provisioned),
                "shortfall": int(self.standby_target
                                 - self.standby_provisioned),
                "current": int(self.pool.standby_count),
                "resizer": (self.resizer.report()
                            if self.resizer is not None
                            else {"enabled": False}),
            },
            "standby_idle_machine_seconds":
                float(self.pool.standby_idle_machine_seconds),
        }
