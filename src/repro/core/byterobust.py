"""The :class:`ByteRobustSystem` facade: one object, whole stack.

Construction wires the full architecture of Fig. 4 around a single
training job:

* data plane — metrics collector + anomaly detector, inspection engine,
  on-demand tracer, checkpoint manager;
* control plane — robust controller (Fig. 5 policy), runtime analyzer,
  hot-update manager, warm-standby provisioning.

``start()`` allocates machines, provisions the P99 standby pool, and
launches the job; ``run_until()`` advances simulated time; ``report()``
produces the :class:`RunReport` every benchmark and example consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analyzer.aggregation import AggregationConfig
from repro.checkpoint.strategies import SaveStrategy
from repro.cluster.components import MachineSpec
from repro.cluster.faults import FaultInjector
from repro.cluster.pool import MachinePool, ProvisioningTimes
from repro.cluster.topology import Cluster, ClusterSpec
from repro.controller.controller import ControllerConfig
from repro.controller.policy import RecoveryPolicy
from repro.controller.stack import StackConfig, build_management_stack
from repro.controller.standby import StandbyPolicy
from repro.core.ettr import EttrSeries, EttrTracker, UnproductiveBreakdown
from repro.core.incidents import IncidentLog
from repro.monitor.collectors import CollectorConfig
from repro.monitor.detectors import DetectorConfig
from repro.monitor.inspections import InspectionConfig
from repro.sim import RngStreams, Simulator
from repro.training.job import TrainingJobConfig
from repro.training.metrics import CodeVersionProfile


@dataclass
class SystemConfig:
    """Everything needed to stand up one robust training deployment."""

    job: TrainingJobConfig
    seed: int = 0
    #: Extra cluster capacity beyond the job (standbys + spares).  None
    #: sizes it automatically (P99 standbys + 25% headroom, min 8).
    spare_machines: Optional[int] = None
    machine_spec: MachineSpec = field(default_factory=MachineSpec)
    machines_per_switch: int = 16
    initial_code_profile: CodeVersionProfile = field(
        default_factory=lambda: CodeVersionProfile("v0", 0.30))
    collector: CollectorConfig = field(default_factory=CollectorConfig)
    detector: DetectorConfig = field(default_factory=DetectorConfig)
    inspections: InspectionConfig = field(default_factory=InspectionConfig)
    aggregation: AggregationConfig = field(default_factory=AggregationConfig)
    standby: StandbyPolicy = field(default_factory=StandbyPolicy)
    provisioning: ProvisioningTimes = field(
        default_factory=ProvisioningTimes)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    policy: RecoveryPolicy = field(default_factory=RecoveryPolicy)
    #: Enable the checkpoint manager (None strategy = ByteRobust save).
    checkpointing: bool = True
    checkpoint_strategy: Optional[SaveStrategy] = None
    remote_checkpoint_every_steps: int = 100
    zero_stage: int = 1
    ettr_window_s: float = 3600.0
    #: Run the real MiniGPT reference workload for bit-wise alignment
    #: (slower per diagnosis, but a genuine numerical verification).
    use_real_minigpt: bool = True


@dataclass
class RunReport:
    """Everything a run produced, ready for tables and figures."""

    wall_time_s: float
    final_step: int
    ettr: EttrSeries
    breakdown: UnproductiveBreakdown
    incidents: IncidentLog
    mechanism_distribution: Dict[str, Dict[str, float]]
    loss_series: List[tuple]
    mfu_series: List[tuple]
    wasted_step_seconds: float
    standby_idle_machine_seconds: float

    @property
    def cumulative_ettr(self) -> float:
        return self.ettr.final_cumulative()

    def render_timeline(self, width: int = 72) -> str:
        """ASCII incident timeline (a poor man's Fig. 3 gantt)."""
        if not self.incidents.incidents:
            return "(no incidents)"
        lines = [f"0h {'-' * (width - 12)} "
                 f"{self.wall_time_s / 3600:.1f}h"]
        for inc in self.incidents.incidents:
            start = inc.occurred_at if inc.occurred_at >= 0 \
                else inc.detected_at
            end = inc.recovered_at if inc.recovered_at >= 0 \
                else self.wall_time_s
            a = int(width * max(0.0, start) / self.wall_time_s)
            b = max(a + 1, int(width * min(end, self.wall_time_s)
                               / self.wall_time_s))
            bar = " " * a + "#" * (b - a)
            lines.append(f"{bar:<{width}}  {inc.symptom.value} "
                         f"[{inc.mechanism or inc.phase.value}]")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serializable dump of the run (for dashboards/archival)."""
        mfus = [m for _, m in self.mfu_series]
        return {
            "wall_time_s": self.wall_time_s,
            "final_step": self.final_step,
            "cumulative_ettr": self.cumulative_ettr,
            "min_sliding_ettr": self.ettr.min_sliding(),
            "mean_mfu": sum(mfus) / len(mfus) if mfus else 0.0,
            "ettr_curve": {
                "times": list(self.ettr.times),
                "cumulative": list(self.ettr.cumulative),
                "sliding": list(self.ettr.sliding),
                "window_s": self.ettr.window_s,
            },
            "unproductive_breakdown": self.breakdown.as_dict(),
            "mechanism_distribution": self.mechanism_distribution,
            "mfu_series": [[t, m] for t, m in self.mfu_series],
            "wasted_step_seconds": self.wasted_step_seconds,
            "standby_idle_machine_seconds":
                self.standby_idle_machine_seconds,
            "incidents": [
                {
                    "id": inc.incident_id,
                    "symptom": inc.symptom.value,
                    "category": inc.category.value,
                    "mechanism": inc.mechanism,
                    "phase": inc.phase.value,
                    "occurred_at": inc.occurred_at,
                    "detected_at": inc.detected_at,
                    "localized_at": inc.localized_at,
                    "recovered_at": inc.recovered_at,
                    "detection_s": inc.detection_seconds,
                    "localization_s": inc.localization_seconds,
                    "failover_s": inc.failover_seconds,
                    "resolution_s": inc.resolution_seconds,
                    "evicted_machines": list(inc.evicted_machines),
                    "actions": list(inc.actions),
                    "detail": inc.detail,
                }
                for inc in self.incidents.incidents
            ],
        }

    def summary(self) -> str:
        lines = [
            f"wall time:        {self.wall_time_s / 3600:.1f} h",
            f"final step:       {self.final_step}",
            f"cumulative ETTR:  {self.cumulative_ettr:.4f}",
            f"incidents:        {len(self.incidents)}",
            f"recompute waste:  {self.wasted_step_seconds:.0f} s",
        ]
        for mech, row in sorted(self.mechanism_distribution.items()):
            total = sum(row.values())
            lines.append(f"  {mech:<12} {int(total)} incidents")
        return "\n".join(lines)


class ByteRobustSystem:
    """A fully wired robust-training deployment on the simulator."""

    def __init__(self, config: SystemConfig):
        self.config = config
        self.sim = Simulator()
        self.rng = RngStreams(config.seed)
        job_machines = config.job.parallelism.world_size \
            // config.job.parallelism.gpus_per_machine
        spare = config.spare_machines
        if spare is None:
            p99 = config.standby.standby_count(job_machines)
            spare = max(8, p99 + job_machines // 4)
        self.cluster = Cluster(ClusterSpec(
            num_machines=job_machines + spare,
            machine_spec=config.machine_spec,
            machines_per_switch=config.machines_per_switch))
        self.injector = FaultInjector(self.sim, self.cluster)
        self.pool = MachinePool(self.sim, self.cluster,
                                times=config.provisioning)
        self.pool.on_repair = self.injector.clear_machine
        self.stack = build_management_stack(
            self.sim, self.cluster, self.pool, self.injector, config.job,
            diag_rng=self.rng,
            config=StackConfig(
                collector=config.collector,
                detector=config.detector,
                inspections=config.inspections,
                aggregation=config.aggregation,
                standby=config.standby,
                policy=config.policy,
                controller=config.controller,
                initial_code_profile=config.initial_code_profile,
                use_real_minigpt=config.use_real_minigpt,
                checkpointing=config.checkpointing,
                checkpoint_strategy=config.checkpoint_strategy,
                remote_checkpoint_every_steps=(
                    config.remote_checkpoint_every_steps),
                zero_stage=config.zero_stage))
        self.job = self.stack.job
        self.collector = self.stack.collector
        self.detector = self.stack.detector
        self.inspections = self.stack.inspections
        self.diagnoser = self.stack.diagnoser
        self.replay = self.stack.replay
        self.analyzer = self.stack.analyzer
        self.tracer = self.stack.tracer
        self.hotupdate = self.stack.hotupdate
        self.ckpt_manager = self.stack.ckpt_manager
        self.incident_log = self.stack.incident_log
        self.controller = self.stack.controller
        self._started = False
        self._mfu_samples: List[tuple] = []
        self.collector.on_step(
            lambda m: self._mfu_samples.append((m.step, m.mfu)))

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Allocate machines, provision standbys, launch everything."""
        if self._started:
            raise RuntimeError("system already started")
        self._started = True
        machines = self.pool.allocate_active(self.job.num_machines)
        self.job.bind_machines(machines)
        self.controller.ensure_standbys()
        self.collector.start()
        self.inspections.start()
        self.job.start()

    def run_until(self, t: float) -> None:
        self.sim.run(until=t)

    # ------------------------------------------------------------------
    def report(self, run_end: Optional[float] = None,
               samples: int = 200) -> RunReport:
        end = run_end if run_end is not None else self.sim.now
        tracker = EttrTracker(window_s=self.config.ettr_window_s)
        ettr = tracker.series(self.job.step_records, run_end=end,
                              samples=samples)
        breakdown = tracker.breakdown(
            self.incident_log.resolved(),
            recompute_seconds=self.job.wasted_step_seconds())
        return RunReport(
            wall_time_s=end,
            final_step=self.job.current_step,
            ettr=ettr,
            breakdown=breakdown,
            incidents=self.incident_log,
            mechanism_distribution=(
                self.incident_log.mechanism_distribution()),
            loss_series=self.job.loss_series(),
            mfu_series=list(self._mfu_samples),
            wasted_step_seconds=self.job.wasted_step_seconds(),
            standby_idle_machine_seconds=(
                self.pool.standby_idle_machine_seconds),
        )
