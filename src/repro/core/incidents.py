"""Incident records: what happened, how it was resolved, and when.

An :class:`Incident` tracks the full unproductive-time timeline of
Fig. 3: occurrence → detection → localization → recovery, plus the
mechanism that resolved it (the Table 4 categories) and the machines
evicted along the way.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.faults import FaultCategory, FaultSymptom


class IncidentPhase(enum.Enum):
    DETECTED = "detected"
    LOCALIZING = "localizing"
    RECOVERING = "recovering"
    RESOLVED = "resolved"
    ESCALATED = "escalated"


@dataclass
class Incident:
    """One training incident from occurrence to resolution."""

    incident_id: int
    symptom: FaultSymptom
    #: When the underlying fault actually struck (ground truth; -1 when
    #: unknown, e.g. manual restarts have no fault behind them).
    occurred_at: float = -1.0
    detected_at: float = -1.0
    localized_at: float = -1.0
    recovered_at: float = -1.0
    phase: IncidentPhase = IncidentPhase.DETECTED
    #: Resolution mechanism label (Table 4: AutoFT-ER, AutoFT-HU,
    #: Analyzer-ER, Rollback; plus Reattempt / Replay-ER / Escalated).
    mechanism: str = ""
    evicted_machines: List[int] = field(default_factory=list)
    #: Actions taken along the Fig. 5 ladder, in order.
    actions: List[str] = field(default_factory=list)
    #: Ground-truth fault id, when one exists.
    fault_id: Optional[int] = None
    detail: str = ""

    # ------------------------------------------------------------------
    @property
    def detection_seconds(self) -> Optional[float]:
        if self.occurred_at < 0 or self.detected_at < 0:
            return None
        return self.detected_at - self.occurred_at

    @property
    def localization_seconds(self) -> Optional[float]:
        if self.detected_at < 0 or self.localized_at < 0:
            return None
        return self.localized_at - self.detected_at

    @property
    def failover_seconds(self) -> Optional[float]:
        if self.localized_at < 0 or self.recovered_at < 0:
            return None
        return self.recovered_at - self.localized_at

    @property
    def total_unproductive_seconds(self) -> Optional[float]:
        start = self.occurred_at if self.occurred_at >= 0 else self.detected_at
        if start < 0 or self.recovered_at < 0:
            return None
        return self.recovered_at - start

    @property
    def resolution_seconds(self) -> Optional[float]:
        """Localization → successful restart (the Table 6 metric)."""
        if self.localized_at < 0 or self.recovered_at < 0:
            return None
        return self.recovered_at - self.localized_at

    @property
    def category(self) -> FaultCategory:
        return self.symptom.category


class IncidentLog:
    """Append-only incident history with summary queries."""

    def __init__(self) -> None:
        self.incidents: List[Incident] = []
        self._next_id = 0

    def open(self, symptom: FaultSymptom, detected_at: float,
             occurred_at: float = -1.0, detail: str = "",
             fault_id: Optional[int] = None) -> Incident:
        incident = Incident(
            incident_id=self._next_id, symptom=symptom,
            occurred_at=occurred_at, detected_at=detected_at,
            detail=detail, fault_id=fault_id)
        self._next_id += 1
        self.incidents.append(incident)
        return incident

    # ------------------------------------------------------------------
    def resolved(self) -> List[Incident]:
        return [i for i in self.incidents
                if i.phase is IncidentPhase.RESOLVED]

    def by_mechanism(self) -> Dict[str, List[Incident]]:
        out: Dict[str, List[Incident]] = {}
        for incident in self.resolved():
            out.setdefault(incident.mechanism, []).append(incident)
        return out

    def by_symptom(self) -> Dict[FaultSymptom, List[Incident]]:
        out: Dict[FaultSymptom, List[Incident]] = {}
        for incident in self.incidents:
            out.setdefault(incident.symptom, []).append(incident)
        return out

    def mechanism_distribution(self) -> Dict[str, Dict[str, float]]:
        """Table 4 rows: mechanism → {explicit, implicit, manual} counts."""
        out: Dict[str, Dict[str, float]] = {}
        for incident in self.resolved():
            row = out.setdefault(incident.mechanism, {
                "explicit": 0, "implicit": 0, "manual": 0})
            row[incident.category.value] += 1
        return out

    def __len__(self) -> int:
        return len(self.incidents)

    def __bool__(self) -> bool:
        """Always truthy: an empty log is still a log.

        Without this, ``__len__`` makes a fresh log falsy, and every
        ``incident_log or IncidentLog()``-style call site silently
        swaps in a new log and loses the caller's history.
        """
        return True
