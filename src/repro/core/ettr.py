"""ETTR accounting (Sec. 8.1.3) and the Fig. 3 unproductive breakdown.

ETTR — effective training time ratio — is productive training seconds
over wall-clock seconds.  Productive time is the wall time spent
executing steps that ultimately *persist*: steps rolled back by a
checkpoint restart count as waste (the "recompute" slice of Fig. 3),
exactly like the paper's definition.

Two views:

* **cumulative ETTR** — productive(0, t) / t, the headline 97% metric;
* **sliding-window ETTR** — productive(t - w, t) / w with a one-hour
  window, which exposes the transient dips every incident causes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.training.job import StepRecord


@dataclass
class EttrSeries:
    """Sampled ETTR curves ready for plotting / table output."""

    times: List[float]
    cumulative: List[float]
    sliding: List[float]
    window_s: float

    def final_cumulative(self) -> float:
        return self.cumulative[-1] if self.cumulative else 0.0

    def min_sliding(self) -> float:
        return min(self.sliding) if self.sliding else 0.0


@dataclass
class UnproductiveBreakdown:
    """Fig. 3 slices, aggregated over a run (seconds)."""

    detection: float = 0.0
    localization: float = 0.0
    failover: float = 0.0
    recompute: float = 0.0

    @property
    def total(self) -> float:
        return (self.detection + self.localization + self.failover
                + self.recompute)

    def as_dict(self) -> dict:
        return {
            "detection_s": self.detection,
            "localization_s": self.localization,
            "failover_s": self.failover,
            "recompute_s": self.recompute,
            "total_s": self.total,
        }


class EttrTracker:
    """Computes ETTR curves from a job's step execution records."""

    def __init__(self, window_s: float = 3600.0):
        self.window_s = window_s

    # ------------------------------------------------------------------
    def productive_intervals(self, records: Iterable[StepRecord]
                             ) -> List[Tuple[float, float]]:
        """Committed step execution intervals, sorted and disjoint."""
        intervals = sorted((r.start, r.end) for r in records if r.committed)
        merged: List[Tuple[float, float]] = []
        for start, end in intervals:
            if merged and start <= merged[-1][1] + 1e-12:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return merged

    @staticmethod
    def _productive_before(intervals: List[Tuple[float, float]],
                           t: float) -> float:
        total = 0.0
        for start, end in intervals:
            if start >= t:
                break
            total += min(end, t) - start
        return total

    def series(self, records: Iterable[StepRecord], run_end: float,
               samples: int = 200, run_start: float = 0.0) -> EttrSeries:
        """Sample cumulative + sliding ETTR over [run_start, run_end]."""
        if run_end <= run_start:
            raise ValueError("run_end must exceed run_start")
        if samples < 2:
            raise ValueError("need at least 2 samples")
        intervals = self.productive_intervals(records)
        times, cumulative, sliding = [], [], []
        span = run_end - run_start
        for i in range(samples):
            t = run_start + span * (i + 1) / samples
            prod_t = self._productive_before(intervals, t)
            elapsed = t - run_start
            cumulative.append(prod_t / elapsed if elapsed > 0 else 0.0)
            w0 = max(run_start, t - self.window_s)
            width = t - w0
            prod_w = prod_t - self._productive_before(intervals, w0)
            sliding.append(prod_w / width if width > 0 else 0.0)
            times.append(t)
        return EttrSeries(times=times, cumulative=cumulative,
                          sliding=sliding, window_s=self.window_s)

    def cumulative_at(self, records: Iterable[StepRecord],
                      t: float, run_start: float = 0.0) -> float:
        intervals = self.productive_intervals(records)
        elapsed = t - run_start
        if elapsed <= 0:
            return 0.0
        return self._productive_before(intervals, t) / elapsed

    # ------------------------------------------------------------------
    @staticmethod
    def breakdown(incidents, recompute_seconds: float = 0.0
                  ) -> UnproductiveBreakdown:
        """Aggregate Fig. 3 slices over resolved incidents.

        ``recompute_seconds`` comes from the job's uncommitted step time
        (re-executing rolled-back steps).
        """
        out = UnproductiveBreakdown(recompute=recompute_seconds)
        for incident in incidents:
            if incident.detection_seconds is not None:
                out.detection += incident.detection_seconds
            if incident.localization_seconds is not None:
                out.localization += incident.localization_seconds
            if incident.failover_seconds is not None:
                out.failover += incident.failover_seconds
        return out
