"""ByteRobust's top-level API.

* :mod:`repro.core.incidents` — incident records and the incident log
  (symptom, mechanism, timeline, evicted machines);
* :mod:`repro.core.ettr` — ETTR accounting: cumulative and
  sliding-window effective-training-time ratio, plus the unproductive-
  time breakdown of Fig. 3 (detection / localization / failover /
  recompute);
* :mod:`repro.core.byterobust` — the :class:`ByteRobustSystem` facade
  that wires the cluster, training job, monitor, controller, analyzer,
  and checkpoint engine together, and the :class:`RunReport` produced
  by a simulated production run;
* :mod:`repro.core.platform` — the multi-job
  :class:`TrainingPlatform`: jobs enter as a typed :class:`JobSpec`
  and come back as a live :class:`JobHandle` whose
  :class:`HandleState` walks QUEUED → RUNNING (→ PREEMPTED /
  RESIZING) → DONE.
"""

from repro.core.incidents import Incident, IncidentLog, IncidentPhase
from repro.core.ettr import EttrSeries, EttrTracker, UnproductiveBreakdown
from repro.core.byterobust import (
    ByteRobustSystem,
    RunReport,
    SystemConfig,
)
from repro.core.platform import (
    HandleState,
    JobHandle,
    JobSpec,
    PlatformConfig,
    TrainingPlatform,
)

__all__ = [
    "ByteRobustSystem",
    "EttrSeries",
    "EttrTracker",
    "HandleState",
    "Incident",
    "IncidentLog",
    "IncidentPhase",
    "JobHandle",
    "JobSpec",
    "PlatformConfig",
    "RunReport",
    "SystemConfig",
    "TrainingPlatform",
    "UnproductiveBreakdown",
]
