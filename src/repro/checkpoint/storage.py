"""Storage tiers and transfer-time math for checkpointing.

All checkpoint timing derives from four paths:

* **D2H** — GPU HBM → host DRAM over PCIe, shared by the machine's GPUs;
* **P2P** — host → peer host over RDMA (backup shard exchange);
* **SSD** — host DRAM → local SSD;
* **Remote** — host → remote FS over the low-bandwidth frontend network
  (the paper's motivation for avoiding it on the restart path).

The remote tier can be marked unavailable to model HDFS outages
(Table 1 lists 1104 HDFS errors), which is why ByteRobust never blocks
recovery on it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.components import MachineSpec


@dataclass
class StorageTiers:
    """Transfer-time calculator for one machine type."""

    machine_spec: MachineSpec
    #: CPU-side serialization throughput per rank (pickle/encode), GB/s.
    serialize_gbps: float = 8.0
    #: Fixed per-operation latency (RPC + fsync-style costs), seconds.
    op_latency_s: float = 0.05
    #: Remote FS currently reachable.
    remote_available: bool = True

    # ------------------------------------------------------------------
    def d2h_seconds(self, bytes_per_rank: int) -> float:
        """GPU→CPU copy time for one rank's shard.

        The machine's PCIe bandwidth is shared by its GPUs, all copying
        at once during an every-step checkpoint.
        """
        per_rank_gbps = (self.machine_spec.pcie_bandwidth_gbps
                         / self.machine_spec.gpus_per_machine)
        return self._xfer(bytes_per_rank, per_rank_gbps)

    def serialize_seconds(self, bytes_per_rank: int) -> float:
        return self._xfer(bytes_per_rank, self.serialize_gbps)

    def p2p_seconds(self, bytes_per_rank: int) -> float:
        """Backup shard exchange with the peer rank over RDMA."""
        per_rank_gbps = (self.machine_spec.rdma_bandwidth_gbps
                         * self.machine_spec.nics_per_machine
                         / self.machine_spec.gpus_per_machine)
        return self._xfer(bytes_per_rank, per_rank_gbps)

    def ssd_seconds(self, bytes_per_rank: int) -> float:
        per_rank_gbps = (self.machine_spec.ssd_bandwidth_gbps
                         / self.machine_spec.gpus_per_machine)
        return self._xfer(bytes_per_rank, per_rank_gbps)

    def remote_seconds(self, bytes_per_rank: int) -> float:
        """Write/read one rank's shard to/from the remote FS."""
        if not self.remote_available:
            raise RuntimeError("remote storage unavailable")
        per_rank_gbps = (self.machine_spec.remote_fs_bandwidth_gbps
                         / self.machine_spec.gpus_per_machine)
        return self._xfer(bytes_per_rank, per_rank_gbps)

    def load_local_seconds(self, bytes_per_rank: int) -> float:
        """Restore from host DRAM (H2D copy back)."""
        return self.d2h_seconds(bytes_per_rank)

    # ------------------------------------------------------------------
    def _xfer(self, nbytes: int, gbps: float) -> float:
        if nbytes < 0:
            raise ValueError("negative byte count")
        if gbps <= 0:
            raise ValueError("bandwidth must be positive")
        return self.op_latency_s + nbytes / (gbps * 1e9)
