"""Load-time checkpoint resharding across parallelism configurations.

The paper leans on ByteCheckpoint for parallelism-agnostic checkpoints:
a job saved under one (TP, PP, DP/ZeRO) layout can resume under another
— which ByteRobust exercises every time dual-phase replay re-runs the
job with a reduced DP size, and whenever recovery changes machine
counts.

The model here treats the parameter space as the unit interval:

* TP x PP splits it into ``tp * pp`` equal **model partitions**
  (PP-major, matching layer-wise pipeline splits refined by TP);
* ZeRO-1 further splits each partition's optimizer state ``dp`` ways.

A reshard plan maps every *target* rank to the *source* ranks whose
saved ranges overlap its required range, with exact byte counts — the
data-movement bill for the resharded load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.parallelism import ParallelismConfig, RankTopology

Interval = Tuple[float, float]


def _model_interval(topo: RankTopology, rank: int) -> Interval:
    """The model-parameter range owned by ``rank`` (TP x PP split)."""
    coord = topo.coord_of(rank)
    cfg = topo.config
    n = cfg.pp * cfg.tp
    index = coord.pp * cfg.tp + coord.tp     # PP-major
    return (index / n, (index + 1) / n)


def _optimizer_interval(topo: RankTopology, rank: int) -> Interval:
    """The optimizer-state range owned by ``rank`` (ZeRO-1: the model
    partition further split across the DP group)."""
    lo, hi = _model_interval(topo, rank)
    coord = topo.coord_of(rank)
    dp = topo.config.dp
    width = (hi - lo) / dp
    return (lo + coord.dp * width, lo + (coord.dp + 1) * width)


def _overlap(a: Interval, b: Interval) -> float:
    return max(0.0, min(a[1], b[1]) - max(a[0], b[0]))


@dataclass
class ReshardTransfer:
    """Bytes one target rank must pull from one source rank."""

    source_rank: int
    target_rank: int
    model_bytes: int
    optimizer_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.model_bytes + self.optimizer_bytes


@dataclass
class ReshardPlan:
    """Full source→target mapping for one reshard."""

    source: ParallelismConfig
    target: ParallelismConfig
    transfers: List[ReshardTransfer] = field(default_factory=list)

    def transfers_to(self, target_rank: int) -> List[ReshardTransfer]:
        return [t for t in self.transfers if t.target_rank == target_rank]

    def total_bytes(self) -> int:
        return sum(t.total_bytes for t in self.transfers)

    def bytes_into(self, target_rank: int) -> int:
        return sum(t.total_bytes for t in self.transfers_to(target_rank))

    def source_fan_in(self, target_rank: int) -> int:
        return len(self.transfers_to(target_rank))


def plan_reshard(source: ParallelismConfig, target: ParallelismConfig,
                 model_total_bytes: int,
                 optimizer_total_bytes: int) -> ReshardPlan:
    """Compute the reshard plan between two parallelism layouts.

    ``model_total_bytes`` / ``optimizer_total_bytes`` are the *global*
    (unsharded) state sizes; per-rank byte counts follow from interval
    overlaps.  Model state is deduplicated within DP groups at save
    time, so only overlap in the (TP x PP) split matters for it.
    """
    if model_total_bytes < 0 or optimizer_total_bytes < 0:
        raise ValueError("state sizes must be non-negative")
    src = RankTopology(source)
    dst = RankTopology(target)
    plan = ReshardPlan(source=source, target=target)

    # precompute source intervals once
    src_model = {r: _model_interval(src, r) for r in src.iter_ranks()}
    src_opt = {r: _optimizer_interval(src, r) for r in src.iter_ranks()}
    # model state is replicated across the source DP group — the
    # canonical copy lives with dp == 0 (save-time deduplication)
    model_owners = [r for r in src.iter_ranks()
                    if src.coord_of(r).dp == 0]

    for t_rank in dst.iter_ranks():
        t_coord = dst.coord_of(t_rank)
        t_model = _model_interval(dst, t_rank)
        t_opt = _optimizer_interval(dst, t_rank)
        # like the save-time dedup, only target dp==0 ranks *load*
        # model weights; they broadcast within their DP group afterward
        load_model = t_coord.dp == 0
        per_source: Dict[int, List[int]] = {}
        if load_model:
            for s_rank in model_owners:
                frac = _overlap(src_model[s_rank], t_model)
                if frac > 1e-15:
                    nbytes = round(frac * model_total_bytes)
                    per_source.setdefault(s_rank, [0, 0])[0] += nbytes
        for s_rank in src.iter_ranks():
            frac = _overlap(src_opt[s_rank], t_opt)
            if frac > 1e-15:
                per_source.setdefault(s_rank, [0, 0])[1] += round(
                    frac * optimizer_total_bytes)
        for s_rank, (mb, ob) in sorted(per_source.items()):
            plan.transfers.append(ReshardTransfer(
                source_rank=s_rank, target_rank=t_rank,
                model_bytes=mb, optimizer_bytes=ob))
    return plan


def reshard_load_seconds(plan: ReshardPlan,
                         per_rank_bandwidth_gbps: float = 12.5) -> float:
    """Wall time of the resharded load: the slowest target rank's pull
    (all ranks pull in parallel over RDMA)."""
    if per_rank_bandwidth_gbps <= 0:
        raise ValueError("bandwidth must be positive")
    dst = RankTopology(plan.target)
    worst = max((plan.bytes_into(r) for r in dst.iter_ranks()),
                default=0)
    return worst / (per_rank_bandwidth_gbps * 1e9)
