"""Over-eviction-aware, high-frequency checkpointing (Sec. 6.3).

Four pieces:

* :mod:`repro.checkpoint.planner` — the cross-parallel-group backup
  strategy: each rank's shards are replicated onto a peer rank that
  shares **none** of its TP/PP/DP groups, so evicting any whole parallel
  group still leaves one copy of everything (Fig. 9);
* :mod:`repro.checkpoint.storage` — storage tiers (HBM → CPU DRAM →
  local SSD → remote FS) with bandwidth/latency parameters;
* :mod:`repro.checkpoint.strategies` — per-step stall models for the
  three approaches compared in Table 8 (Megatron save, Gemini-style
  in-memory save, ByteRobust's dual-buffered async save);
* :mod:`repro.checkpoint.manager` — the runtime engine: every-step
  asynchronous checkpoints, dual-buffer semantics, and recovery-source
  selection after machine evictions.
"""

from repro.checkpoint.planner import BackupPlan, plan_cross_group_backup
from repro.checkpoint.storage import StorageTiers
from repro.checkpoint.strategies import (
    ByteRobustSave,
    CheckpointContext,
    MegatronSave,
    MemorySave,
    SaveStrategy,
)
from repro.checkpoint.reshard import (
    ReshardPlan,
    ReshardTransfer,
    plan_reshard,
    reshard_load_seconds,
)
from repro.checkpoint.manager import (
    CheckpointManager,
    RecoveryDecision,
    RecoverySource,
)

__all__ = [
    "BackupPlan",
    "ByteRobustSave",
    "CheckpointContext",
    "CheckpointManager",
    "MegatronSave",
    "MemorySave",
    "RecoveryDecision",
    "RecoverySource",
    "ReshardPlan",
    "ReshardTransfer",
    "SaveStrategy",
    "StorageTiers",
    "plan_cross_group_backup",
    "plan_reshard",
    "reshard_load_seconds",
]
