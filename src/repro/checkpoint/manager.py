"""The checkpoint manager: every-step async checkpoints + recovery.

Runtime behaviour (Sec. 6.3 / Sec. 7 "High-Frequency Checkpointing"):

* each completed step kicks off an asynchronous save: after the D2H +
  serialization tail, the step's **local** checkpoint is durable in
  host memory; after the P2P exchange, its **backup** copy is durable
  on the cross-group peer machine;
* dual-buffering means a failure mid-save never corrupts the previous
  checkpoint — the latest *completed* step is always recoverable;
* a remote persist runs every ``remote_every_steps`` as a last-resort
  tier (kept off the hot restart path);
* on recovery, each rank prefers local CPU memory, then its backup
  peer, then remote; the job restarts from the *minimum* step available
  across ranks, and the manager reports where that step came from and
  how long loading takes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.checkpoint.planner import BackupPlan, plan_cross_group_backup
from repro.checkpoint.storage import StorageTiers
from repro.checkpoint.strategies import ByteRobustSave, CheckpointContext, SaveStrategy
from repro.parallelism import ShardedStateSizes
from repro.sim import Simulator
from repro.training.job import TrainingJob
from repro.training.metrics import StepMetrics


class RecoverySource(enum.Enum):
    LOCAL_MEMORY = "local_memory"
    PEER_BACKUP = "peer_backup"
    REMOTE_STORAGE = "remote_storage"
    NONE = "none"          # nothing recoverable (restart from step 0)


@dataclass
class RecoveryDecision:
    """Where to restart from after evicting ``evicted_machines``."""

    restart_step: int
    source: RecoverySource
    load_seconds: float
    #: steps of progress lost relative to the last completed step
    lost_steps: int = 0


@dataclass
class _SlotCheckpointState:
    """Durable checkpoint steps for the ranks of one machine slot."""

    local_step: int = -1       # in host memory of the slot's machine
    backup_step: int = -1      # on the cross-group peer machine


class CheckpointManager:
    """Every-step asynchronous checkpointing for one training job."""

    def __init__(self, sim: Simulator, job: TrainingJob,
                 shard_sizes: ShardedStateSizes, tiers: StorageTiers,
                 strategy: Optional[SaveStrategy] = None,
                 remote_every_steps: int = 100):
        self.sim = sim
        self.job = job
        self.shard_sizes = shard_sizes
        self.tiers = tiers
        self.strategy = strategy or ByteRobustSave()
        self.remote_every_steps = remote_every_steps
        self.plan: BackupPlan = plan_cross_group_backup(job.topology)
        self.slot_states: Dict[int, _SlotCheckpointState] = {
            slot: _SlotCheckpointState()
            for slot in range(job.num_machines)}
        self.remote_step: int = -1
        self.saves_started = 0
        self.enabled = True
        #: (effective mfu, context) — everything else in the context
        #: is static, so it only needs rebuilding when the MFU moves
        #: (hot updates, degradations), not twice per training step.
        self._ctx_cache: Optional[tuple] = None
        job.step_listeners.append(self._on_step)
        job.overhead_providers.append(self._blocking_overhead)

    # ------------------------------------------------------------------
    def _context(self) -> CheckpointContext:
        mfu = self.job.mfu_model.current_mfu()
        cached = self._ctx_cache
        if cached is not None and cached[0] == mfu:
            return cached[1]
        ctx = CheckpointContext(
            shard_sizes=self.shard_sizes, tiers=self.tiers,
            base_step_s=self.job.mfu_model.step_time(
                self.job.config.model.flops_per_step(
                    self.job.config.global_batch_size),
                self.job.topology.world_size,
                self.job.config.gpu_peak_tflops))
        self._ctx_cache = (mfu, ctx)
        return ctx

    def _blocking_overhead(self, step: int) -> float:
        if not self.enabled:
            return 0.0
        return self.strategy.blocking_seconds(self._context())

    def _on_step(self, metrics: StepMetrics) -> None:
        if not self.enabled:
            return
        self.saves_started += 1
        ctx = self._context()
        step = metrics.step
        nbytes = self.shard_sizes.checkpoint_bytes
        local_delay = (self.strategy.async_tail_seconds(ctx)
                       or self.tiers.serialize_seconds(nbytes))
        # local durability: after D2H + serialization complete
        self.sim.schedule(self.tiers.serialize_seconds(nbytes),
                          lambda: self._mark_local(step))
        # backup durability: after the P2P exchange also lands
        self.sim.schedule(local_delay, lambda: self._mark_backup(step))
        if self.remote_every_steps > 0 and (
                step % self.remote_every_steps == 0):
            remote_delay = local_delay + self.tiers.remote_seconds(nbytes) \
                if self.tiers.remote_available else None
            if remote_delay is not None:
                self.sim.schedule(remote_delay,
                                  lambda: self._mark_remote(step))

    def _mark_local(self, step: int) -> None:
        for state in self.slot_states.values():
            if step > state.local_step:
                state.local_step = step

    def _mark_backup(self, step: int) -> None:
        for state in self.slot_states.values():
            if step > state.backup_step:
                state.backup_step = step

    def _mark_remote(self, step: int) -> None:
        self.remote_step = max(self.remote_step, step)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def plan_recovery(self, evicted_machines: Sequence[int]
                      ) -> RecoveryDecision:
        """Best restart step after evicting those physical machines.

        For each machine slot, the slot's shards survive locally if its
        machine was not evicted; otherwise the backup copy survives if
        the backup-holder machine was not evicted; otherwise only the
        remote tier remains for that slot.
        """
        evicted_slots = {
            slot for mid in evicted_machines
            for slot in [self.job.slot_of_machine(mid)] if slot is not None}
        best_step = None
        worst_source = RecoverySource.LOCAL_MEMORY
        nbytes = self.shard_sizes.checkpoint_bytes
        for slot, state in self.slot_states.items():
            backup_slot = self._backup_holder_slot(slot)
            if slot not in evicted_slots:
                step, source = state.local_step, RecoverySource.LOCAL_MEMORY
            elif backup_slot not in evicted_slots:
                step, source = state.backup_step, RecoverySource.PEER_BACKUP
            elif self.tiers.remote_available and self.remote_step >= 0:
                step, source = self.remote_step, RecoverySource.REMOTE_STORAGE
            else:
                step, source = -1, RecoverySource.NONE
            if best_step is None or step < best_step:
                best_step = step
            worst_source = self._worse(worst_source, source)
        assert best_step is not None
        restart_step = max(0, best_step)
        if best_step < 0:
            worst_source = RecoverySource.NONE
        load = self._load_seconds(worst_source, nbytes)
        lost = max(0, self.job.current_step - restart_step)
        return RecoveryDecision(restart_step=restart_step,
                                source=worst_source, load_seconds=load,
                                lost_steps=lost)

    def _backup_holder_slot(self, slot: int) -> int:
        """Machine slot that holds backups of ``slot``'s ranks.

        The plan maps every rank of a machine to peers on one machine
        (shifting pp/dp moves whole machines), so any rank's peer
        machine represents the slot.
        """
        first_rank = self.job.topology.ranks_on_machine(slot)[0]
        return self.plan.machine_of_backup(first_rank)

    @staticmethod
    def _worse(a: RecoverySource, b: RecoverySource) -> RecoverySource:
        order = [RecoverySource.LOCAL_MEMORY, RecoverySource.PEER_BACKUP,
                 RecoverySource.REMOTE_STORAGE, RecoverySource.NONE]
        return max(a, b, key=order.index)

    def _load_seconds(self, source: RecoverySource, nbytes: int) -> float:
        if source is RecoverySource.LOCAL_MEMORY:
            return self.tiers.load_local_seconds(nbytes)
        if source is RecoverySource.PEER_BACKUP:
            return (self.tiers.p2p_seconds(nbytes)
                    + self.tiers.load_local_seconds(nbytes))
        if source is RecoverySource.REMOTE_STORAGE:
            return (self.tiers.remote_seconds(nbytes)
                    + self.tiers.load_local_seconds(nbytes))
        return 0.0

    # ------------------------------------------------------------------
    def rebind(self, restart_step: int,
               shard_sizes: Optional[ShardedStateSizes] = None) -> None:
        """Re-derive the backup plan and slot table after an elastic
        resize changed the job's topology (and with it the per-rank
        shard sizes).  Every slot of the new layout holds the boundary
        checkpoint it just loaded, mirroring :meth:`after_recovery`."""
        if shard_sizes is not None:
            self.shard_sizes = shard_sizes
        self.plan = plan_cross_group_backup(self.job.topology)
        self.slot_states = {
            slot: _SlotCheckpointState(local_step=restart_step,
                                       backup_step=restart_step)
            for slot in range(self.job.num_machines)}
        self._ctx_cache = None

    def after_recovery(self, restart_step: int) -> None:
        """Reset durable state to the restarted step on every slot."""
        for state in self.slot_states.values():
            state.local_step = min(state.local_step, restart_step)
            state.backup_step = min(state.backup_step, restart_step)
        # A fresh copy now exists everywhere (the loaded checkpoint).
        for state in self.slot_states.values():
            state.local_step = max(state.local_step, restart_step)
            state.backup_step = max(state.backup_step, restart_step)
