"""Cross-parallel-group backup planning (Sec. 6.3, Fig. 9).

Machine over-eviction removes an entire parallel group at once, so a
backup peer must share **no** TP, PP, or DP group with the rank it
protects.  Shifting both the PP and DP coordinates by one achieves
this whenever both dimensions are non-trivial:

* same TP group requires equal (pp, dp) — both differ;
* same PP group requires equal (tp, dp) — dp differs;
* same DP group requires equal (tp, pp) — pp differs.

In Fig. 9's TP=2 / PP=4 / DP=2 layout this pairs ranks 8, 9 (machine 4)
with ranks 2, 3 (machine 1), exactly the example in the paper.  When
only a single non-trivial dimension exists (pure-DP / ZeRO jobs), the
plan falls back to the neighboring machine, as the paper specifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.parallelism import RankTopology


@dataclass
class BackupPlan:
    """rank → backup-peer rank, with placement validity queries."""

    topology: RankTopology
    peer_of: Dict[int, int] = field(default_factory=dict)

    def machine_of_backup(self, rank: int) -> int:
        """Machine slot holding ``rank``'s backup copy."""
        return self.topology.machine_of_rank(self.peer_of[rank])

    def ranks_backed_up_on(self, machine_slot: int) -> List[int]:
        """Ranks whose backup copies live on ``machine_slot``."""
        return sorted(r for r, p in self.peer_of.items()
                      if self.topology.machine_of_rank(p) == machine_slot)

    def survives_eviction(self, evicted_slots: Sequence[int]) -> bool:
        """True if every rank's state survives evicting those machines.

        A rank's state survives if its own machine or its backup peer's
        machine remains.
        """
        evicted = set(evicted_slots)
        for rank, peer in self.peer_of.items():
            own = self.topology.machine_of_rank(rank)
            backup = self.topology.machine_of_rank(peer)
            if own in evicted and backup in evicted:
                return False
        return True

    def validate(self) -> None:
        """Raise if any pairing violates the cross-group requirement."""
        topo = self.topology
        multi_dims = sum(
            1 for d in ("tp", "pp", "dp") if topo.group_size(d) > 1)
        for rank, peer in self.peer_of.items():
            if rank == peer:
                raise ValueError(f"rank {rank} backs up onto itself")
            if (topo.machine_of_rank(rank)
                    == topo.machine_of_rank(peer)):
                raise ValueError(
                    f"rank {rank} backs up onto its own machine")
            if multi_dims >= 2 and topo.shares_any_group(rank, peer):
                raise ValueError(
                    f"ranks {rank} and {peer} share a parallel group")


def plan_cross_group_backup(topology: RankTopology) -> BackupPlan:
    """Build the backup plan for a topology.

    The mapping is a bijection (each machine hosts exactly as many
    backups as it owns shards), keeping backup memory balanced.
    """
    topo = topology
    cfg = topo.config
    plan = BackupPlan(topology=topo)
    nontrivial = [d for d in ("tp", "pp", "dp") if topo.group_size(d) > 1]

    if len(nontrivial) >= 2:
        # Cross-group pairing: shift the two (or three) non-trivial
        # dimensions.  A shift of one in each dimension is the paper's
        # Fig. 9 pairing and suffices when every machine hosts a single
        # (pp, dp) coordinate; when machines pack several pipeline
        # stages, some shifts land the backup inside the rank's own
        # group *machine span*, so search shift combinations for one
        # whose backups survive eviction of any group's machines.
        shifts = _find_surviving_shifts(topo, nontrivial)
        if shifts is None:
            raise ValueError(
                "no cross-group backup placement exists for "
                f"{cfg.describe()} at {cfg.gpus_per_machine} GPUs/machine")
        for rank in topo.iter_ranks():
            coord = topo.coord_of(rank)
            updates = {
                dim: (coord.axis(dim) + shifts[dim])
                % topo.group_size(dim)
                for dim in shifts}
            plan.peer_of[rank] = topo.rank_of(coord.replace(**updates))
    else:
        # single parallel dimension (e.g. pure ZeRO): neighbor machine
        gpm = cfg.gpus_per_machine
        world = topo.world_size
        if topo.num_machines < 2:
            raise ValueError(
                "cross-machine backup needs at least two machines")
        for rank in topo.iter_ranks():
            plan.peer_of[rank] = (rank + gpm) % world

    plan.validate()
    return plan


def _find_surviving_shifts(topo: RankTopology,
                           nontrivial: list) -> "dict | None":
    """Smallest per-dimension shifts whose backups survive eviction of
    any single parallel group's machine span.

    Candidates are ordered so that the all-ones shift (the paper's
    Fig. 9 pairing) is tried first.
    """
    import itertools

    ranges = [range(0, topo.group_size(dim)) for dim in nontrivial]
    candidates = sorted(
        (c for c in itertools.product(*ranges) if any(c)),
        key=lambda c: (sum(1 for x in c if x), sum(c), c))
    for combo in candidates:
        shifts = dict(zip(nontrivial, combo))
        if _shifts_survive(topo, shifts):
            return shifts
    return None


def _shifts_survive(topo: RankTopology, shifts: dict) -> bool:
    """True if the shifted pairing satisfies both placement rules:

    * rank level — the peer shares none of the rank's parallel groups;
    * machine level — the backup machine lies outside the machine span
      of each of the rank's groups, except spans that already cover the
      whole fleet (evicting everything loses data under any placement).
    """
    for rank in topo.iter_ranks():
        coord = topo.coord_of(rank)
        updates = {dim: (coord.axis(dim) + delta) % topo.group_size(dim)
                   for dim, delta in shifts.items()}
        peer = topo.rank_of(coord.replace(**updates))
        backup_machine = topo.machine_of_rank(peer)
        if backup_machine == topo.machine_of_rank(rank):
            return False
        if topo.shares_any_group(rank, peer):
            return False
        for dim in ("tp", "pp", "dp"):
            if topo.group_size(dim) <= 1:
                continue
            span = topo.machines_of_group(rank, dim)
            if len(span) == topo.num_machines:
                continue
            if backup_machine in span:
                return False
    return True
