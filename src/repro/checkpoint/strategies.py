"""Per-step checkpoint stall models for the Table 8 comparison.

Each strategy answers two questions for a given job shape:

* ``blocking_seconds()`` — how long training stalls per checkpointed
  step (the "Blocking Time" column of Table 8);
* ``async_tail_seconds()`` — how long after the step the checkpoint
  keeps completing in the background (affects which step's checkpoint
  is durable when a failure strikes, not the step time).

The three strategies:

* **Megatron save** — synchronous: D2H, serialization, and the remote-FS
  write all block training.
* **Memory save** (Gemini-style) — snapshot to CPU memory blocks
  training for the D2H copy; serialization and inter-machine backup
  proceed asynchronously.
* **ByteRobust save** — dual CPU buffers plus a dedicated CUDA stream
  overlap D2H with compute, and backup P2P traffic interleaves with
  training communication in idle cycles; only a small residual
  synchronization at the optimizer step blocks (the paper measures
  0.01–0.04 s, <1% MFU loss).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.checkpoint.storage import StorageTiers
from repro.parallelism import ShardedStateSizes


@dataclass(frozen=True)
class CheckpointContext:
    """Job shape a strategy is evaluated against."""

    shard_sizes: ShardedStateSizes
    tiers: StorageTiers
    #: Healthy step time (without checkpoint overhead), seconds.
    base_step_s: float

    @property
    def ckpt_bytes(self) -> int:
        return self.shard_sizes.checkpoint_bytes


class SaveStrategy:
    """Base class for checkpoint stall models."""

    name = "base"

    def blocking_seconds(self, ctx: CheckpointContext) -> float:
        raise NotImplementedError

    def async_tail_seconds(self, ctx: CheckpointContext) -> float:
        return 0.0

    def relative_mfu(self, ctx: CheckpointContext) -> float:
        """MFU with checkpointing relative to without (Table 8)."""
        blocking = self.blocking_seconds(ctx)
        return ctx.base_step_s / (ctx.base_step_s + blocking)


class MegatronSave(SaveStrategy):
    """Blocking checkpoint straight to remote storage (Megatron-LM)."""

    name = "megatron_save"

    def blocking_seconds(self, ctx: CheckpointContext) -> float:
        nbytes = ctx.ckpt_bytes
        return (ctx.tiers.d2h_seconds(nbytes)
                + ctx.tiers.serialize_seconds(nbytes)
                + ctx.tiers.remote_seconds(nbytes))


class MemorySave(SaveStrategy):
    """Gemini-style in-memory checkpointing with CPU-side backup.

    Training blocks while the snapshot lands in host memory; the
    inter-machine backup and any persistence continue asynchronously.
    """

    name = "memory_save"

    def blocking_seconds(self, ctx: CheckpointContext) -> float:
        return ctx.tiers.d2h_seconds(ctx.ckpt_bytes)

    def async_tail_seconds(self, ctx: CheckpointContext) -> float:
        nbytes = ctx.ckpt_bytes
        return (ctx.tiers.serialize_seconds(nbytes)
                + ctx.tiers.p2p_seconds(nbytes))


class ByteRobustSave(SaveStrategy):
    """Dual-buffer async save with scheduled backup traffic (Sec. 6.3).

    ``overlap_frac`` of the D2H copy hides under forward/backward via
    the dedicated CUDA stream; the optimizer step only waits for the
    small unoverlapped residual (data-integrity barrier).  Backup P2P
    chunks ride idle communication cycles and never block.
    """

    name = "byterobust_save"

    def __init__(self, overlap_frac: float = 0.99,
                 residual_floor_s: float = 0.01):
        if not 0.0 <= overlap_frac < 1.0:
            raise ValueError("overlap_frac must be in [0, 1)")
        self.overlap_frac = overlap_frac
        self.residual_floor_s = residual_floor_s

    def blocking_seconds(self, ctx: CheckpointContext) -> float:
        d2h = ctx.tiers.d2h_seconds(ctx.ckpt_bytes)
        residual = d2h * (1.0 - self.overlap_frac)
        # overlap cannot exceed the step's compute window
        unhideable = max(0.0, d2h - ctx.base_step_s)
        return max(self.residual_floor_s, residual, unhideable)

    def async_tail_seconds(self, ctx: CheckpointContext) -> float:
        nbytes = ctx.ckpt_bytes
        return (ctx.tiers.serialize_seconds(nbytes)
                + ctx.tiers.p2p_seconds(nbytes))
