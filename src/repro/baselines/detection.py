"""Timeout-only detection baseline (the Table 3 "w/o Inspection" column).

Without proactive inspections, failure detection falls back on:

* the collective-communication watchdog — PyTorch-Distributed's default
  timeout (~10 minutes; NCCL's own is 30–60 minutes) — for anything
  that stops progress (crashes whose logs nobody tails, hangs, lost
  GPUs, downed NICs);
* multi-iteration performance statistics for gray failures like
  thermal throttling, which only surface once enough steps complete to
  show an MFU decline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.faults import RootCauseDetail


@dataclass
class TimeoutOnlyDetection:
    """Detection-latency model without real-time inspections."""

    #: PyTorch-Distributed collective timeout (paper: ~10 minutes).
    torch_timeout_s: float = 600.0
    #: Iterations of metrics needed to flag an MFU decline, times the
    #: step duration, gives the monitor-based latency.
    mfu_monitor_iterations: int = 20

    def detection_seconds(self, detail: RootCauseDetail,
                          step_time_s: float = 15.0) -> float:
        """Expected detection latency for a root cause."""
        if detail is RootCauseDetail.GPU_HIGH_TEMPERATURE:
            # gray failure: only statistical MFU monitoring catches it
            return self.mfu_monitor_iterations * step_time_s
        if detail is RootCauseDetail.SWITCH_DOWN:
            # both directions of traffic die; watchdog fires once
            return self.torch_timeout_s
        # everything else waits for the collective timeout
        return self.torch_timeout_s

    def table3_column(self, step_time_s: float = 15.0) -> dict:
        """The "w/o Inspection" column of Table 3."""
        rows = {
            RootCauseDetail.NIC_CRASH: "T_timeout",
            RootCauseDetail.PORT_FLAPPING: "T_timeout",
            RootCauseDetail.SWITCH_DOWN: "T_timeout",
            RootCauseDetail.GPU_DRIVER_HANG: "T_timeout",
            RootCauseDetail.GPU_HIGH_TEMPERATURE: "T_monitor",
            RootCauseDetail.GPU_LOST: "T_timeout",
            RootCauseDetail.OS_KERNEL_FAULT: "T_timeout",
        }
        return {detail: (label,
                         self.detection_seconds(detail, step_time_s))
                for detail, label in rows.items()}
