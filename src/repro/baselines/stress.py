"""Selective stress testing — the prior troubleshooting practice
compared against in Table 6.

The baseline reads the incident's logs/exit codes and launches the
corresponding stress-test battery (GPU burn-in, network soak, storage
probes).  Two structural weaknesses the paper highlights:

* stress tests are *slow* — they must run long enough to shake out
  intermittent faults, so even a crisp GPU fault costs minutes;
* incidents rooted in human mistakes (code bugs, data adjustments)
  never fail a hardware stress test: the baseline cannot localize them
  at all (the ``INF`` entries of Table 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cluster.faults import FaultSymptom, RootCause

#: Stress-test durations by symptom (seconds), calibrated to Table 6's
#: "Selective" column.  None = the baseline cannot localize (INF).
_SELECTIVE_COSTS: Dict[FaultSymptom, Optional[float]] = {
    FaultSymptom.CUDA_ERROR: 518.0,         # INF when user code at fault
    FaultSymptom.INFINIBAND_ERROR: 288.0,
    FaultSymptom.HDFS_ERROR: None,          # storage service: no HW test
    FaultSymptom.OS_KERNEL_PANIC: 168.0,
    FaultSymptom.GPU_MEMORY_ERROR: 600.0,
    FaultSymptom.NAN_VALUE: 7200.0,         # INF when not reproducible
    FaultSymptom.GPU_UNAVAILABLE: 120.0,
    FaultSymptom.CODE_DATA_ADJUSTMENT: None,  # human change: untestable
}


@dataclass
class SelectiveStressTesting:
    """Resolution-cost model for symptom-guided stress testing."""

    costs: Dict[FaultSymptom, Optional[float]] = field(
        default_factory=lambda: dict(_SELECTIVE_COSTS))

    def resolution_seconds(self, symptom: FaultSymptom,
                           root_cause: RootCause = RootCause.INFRASTRUCTURE
                           ) -> float:
        """Time to localize + resolve; inf when the baseline cannot.

        Human-mistake root causes defeat hardware stress testing even
        for symptoms that are normally testable (the "(INF)" footnotes
        in Table 6).
        """
        if root_cause in (RootCause.USER_CODE, RootCause.DATA,
                          RootCause.NONE):
            return math.inf
        cost = self.costs.get(symptom)
        return math.inf if cost is None else cost

    def can_localize(self, symptom: FaultSymptom,
                     root_cause: RootCause = RootCause.INFRASTRUCTURE
                     ) -> bool:
        return math.isfinite(self.resolution_seconds(symptom, root_cause))
