"""Restart-strategy baselines and the Fig. 12 WAS computation.

Four strategies, all expressed over the same
:class:`~repro.cluster.pool.ProvisioningTimes` so comparisons are
apples-to-apples:

* **requeue** — kill the job, clear metadata, reallocate *every*
  machine, rebuild every pod (KubeDL/Kubeflow/Volcano-style);
* **reschedule** — keep survivors, allocate + rebuild pods only for the
  evicted machines (Pathways-style);
* **oracle** — an unlimited pre-warmed standby pool: every eviction is
  absorbed at wake-up cost;
* **ByteRobust** — P99-sized warm standby pool: evictions within the
  pool cost a wake-up; beyond it, only the shortfall is rescheduled.

Fig. 12 weights eviction counts k = 1..P99 by the binomial
simultaneous-failure distribution, with catastrophic events (a whole
switch, e.g. 32 machines) pinned at 1% total probability.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cluster.pool import ProvisioningTimes
from repro.controller.standby import (
    StandbyPolicy,
    simultaneous_failure_pmf,
)


class RestartStrategy:
    """Base: time from failure detection to job resume."""

    name = "base"

    def __init__(self, times: Optional[ProvisioningTimes] = None):
        self.times = times or ProvisioningTimes()

    def restart_seconds(self, num_machines: int, evicted: int) -> float:
        raise NotImplementedError


class RequeueRestart(RestartStrategy):
    """Kill + requeue the entire job regardless of eviction size."""

    name = "requeue"

    def restart_seconds(self, num_machines: int, evicted: int) -> float:
        return self.times.requeue_time(num_machines)


class RescheduleRestart(RestartStrategy):
    """Replace only the evicted machines, rebuilding their pods."""

    name = "reschedule"

    def restart_seconds(self, num_machines: int, evicted: int) -> float:
        return self.times.reschedule_time(evicted)


class OracleRestart(RestartStrategy):
    """Unlimited warm standbys: upper bound on recovery speed."""

    name = "oracle"

    def restart_seconds(self, num_machines: int, evicted: int) -> float:
        return self.times.standby_wake_time(evicted)


class ByteRobustRestart(RestartStrategy):
    """P99 warm standby pool + reschedule for the shortfall."""

    name = "byterobust"

    def __init__(self, times: Optional[ProvisioningTimes] = None,
                 standby_policy: Optional[StandbyPolicy] = None):
        super().__init__(times)
        self.standby_policy = standby_policy or StandbyPolicy()

    def restart_seconds(self, num_machines: int, evicted: int) -> float:
        pool = self.standby_policy.standby_count(num_machines)
        if evicted <= pool:
            return self.times.standby_wake_time(evicted)
        shortfall = evicted - pool
        # standbys wake while the shortfall reschedules; the job waits
        # for the slower of the two paths
        return max(self.times.standby_wake_time(pool),
                   self.times.reschedule_time(shortfall))


def eviction_scenario_weights(num_machines: int,
                              daily_failure_prob: float,
                              p99_count: int,
                              catastrophic_size: int,
                              catastrophic_prob: float = 0.01
                              ) -> Dict[int, float]:
    """Probability weights for eviction sizes, per the Fig. 12 setup.

    Sizes 1..p99 are weighted by the binomial pmf conditioned on at
    least one failure; the catastrophic size carries a fixed 1%.
    """
    if not 0.0 <= catastrophic_prob < 1.0:
        raise ValueError("catastrophic_prob must be in [0, 1)")
    pmf = simultaneous_failure_pmf(num_machines, daily_failure_prob,
                                   k_max=max(p99_count, 1))
    mass = {k: pmf[k] for k in range(1, p99_count + 1)}
    total = sum(mass.values())
    if total <= 0:
        raise ValueError("degenerate failure distribution")
    scale = (1.0 - catastrophic_prob) / total
    weights = {k: v * scale for k, v in mass.items()}
    weights[catastrophic_size] = (
        weights.get(catastrophic_size, 0.0) + catastrophic_prob)
    return weights


def weighted_average_scheduling_time(strategy: RestartStrategy,
                                     num_machines: int,
                                     weights: Dict[int, float]) -> float:
    """WAS time: eviction-size-weighted mean restart time (Fig. 12)."""
    return sum(prob * strategy.restart_seconds(num_machines, k)
               for k, prob in weights.items())
