"""Baselines the paper compares against.

* :mod:`repro.baselines.restart` — job-restart flavours (full requeue,
  reschedule-evicted-only, oracle standby) and the weighted-average
  scheduling time (WAS) computation of Fig. 12;
* :mod:`repro.baselines.detection` — timeout-only failure detection
  (the NCCL/PyTorch-Distributed watchdog world ByteRobust replaces);
* :mod:`repro.baselines.stress` — selective stress testing, the prior
  troubleshooting practice of Table 6.
"""

from repro.baselines.restart import (
    ByteRobustRestart,
    OracleRestart,
    RequeueRestart,
    RescheduleRestart,
    RestartStrategy,
    weighted_average_scheduling_time,
)
from repro.baselines.detection import TimeoutOnlyDetection
from repro.baselines.stress import SelectiveStressTesting

__all__ = [
    "ByteRobustRestart",
    "OracleRestart",
    "RequeueRestart",
    "RescheduleRestart",
    "RestartStrategy",
    "SelectiveStressTesting",
    "TimeoutOnlyDetection",
    "weighted_average_scheduling_time",
]
