"""ByteRobust reproduction — robust LLM training infrastructure.

A full Python reproduction of *Robust LLM Training Infrastructure at
ByteDance* (SOSP 2025): the automated fault-tolerance framework
(Fig. 5), data-driven over-eviction via stack aggregation (Sec. 5),
dual-phase replay for SDC localization (Alg. 1), in-place hot updates,
P99-sized warm standby pools, and over-eviction-aware every-step
checkpointing — all running on a deterministic discrete-event simulated
GPU cluster.

Quickstart::

    from repro import ByteRobustSystem, SystemConfig
    from repro.parallelism import ParallelismConfig
    from repro.training import TrainingJobConfig, dense_70b

    config = SystemConfig(job=TrainingJobConfig(
        model=dense_70b(),
        parallelism=ParallelismConfig(tp=8, pp=2, dp=8)))
    system = ByteRobustSystem(config)
    system.start()
    system.run_until(6 * 3600)
    print(system.report().summary())
"""

from repro.core import ByteRobustSystem, RunReport, SystemConfig

__version__ = "1.0.0"

__all__ = ["ByteRobustSystem", "RunReport", "SystemConfig", "__version__"]
