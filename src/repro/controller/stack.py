"""One per-job management stack, one way to build it.

Every managed training job — whether it is the single job inside a
:class:`~repro.core.byterobust.ByteRobustSystem` or one of many on a
:class:`~repro.core.platform.TrainingPlatform` — carries the same
data-plane/control-plane entourage from Fig. 4: metrics collector,
anomaly detector, inspection engine, on-demand tracer, diagnoser,
dual-phase replay, runtime analyzer, hot-update manager, optional
checkpoint engine, incident log, and the robust controller that ties
the event streams together.  :func:`build_management_stack` is the
single construction path for that wiring; entry points differ only in
the knobs they pass, never in the plumbing.

Construction order is part of the contract: components are created and
listeners attached in a fixed sequence so simulator/RNG state evolves
identically however the stack is reached (the sim-equivalence suite
pins this for the single-job path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.agent.tracer import OnDemandTracer
from repro.analyzer.aggregation import AggregationConfig, RuntimeAnalyzer
from repro.checkpoint.manager import CheckpointManager
from repro.checkpoint.storage import StorageTiers
from repro.checkpoint.strategies import ByteRobustSave, SaveStrategy
from repro.cluster.faults import FaultInjector
from repro.cluster.pool import MachinePool
from repro.cluster.topology import Cluster
from repro.controller.controller import ControllerConfig, RobustController
from repro.controller.hotupdate import HotUpdateManager
from repro.controller.policy import RecoveryPolicy
from repro.controller.standby import (
    StandbyPolicy,
    StandbyResizeConfig,
    StandbyResizer,
)
from repro.core.incidents import IncidentLog
from repro.diagnosis.diagnoser import Diagnoser
from repro.diagnosis.replay import DualPhaseReplay
from repro.monitor.collectors import CollectorConfig, MetricsCollector
from repro.monitor.detectors import AnomalyDetector, DetectorConfig
from repro.monitor.inspections import InspectionConfig, InspectionEngine
from repro.sim import RngStreams, Simulator
from repro.training.job import TrainingJob, TrainingJobConfig
from repro.training.metrics import CodeVersionProfile, MfuModel


@dataclass
class StackConfig:
    """Knobs for one job's management stack (entry-point agnostic)."""

    collector: CollectorConfig = field(default_factory=CollectorConfig)
    detector: DetectorConfig = field(default_factory=DetectorConfig)
    inspections: InspectionConfig = field(default_factory=InspectionConfig)
    aggregation: AggregationConfig = field(default_factory=AggregationConfig)
    standby: StandbyPolicy = field(default_factory=StandbyPolicy)
    policy: RecoveryPolicy = field(default_factory=RecoveryPolicy)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    initial_code_profile: CodeVersionProfile = field(
        default_factory=lambda: CodeVersionProfile("v0", 0.30))
    use_real_minigpt: bool = False
    #: Elastic warm-pool resizing for the pool this stack draws on
    #: (None keeps the pool sized once at start, the historical
    #: behaviour).  Platforms that share one pool across many stacks
    #: build a single shared resizer instead of setting this.
    standby_resize: Optional[StandbyResizeConfig] = None
    #: Enable the checkpoint engine (None strategy = ByteRobust save).
    checkpointing: bool = False
    checkpoint_strategy: Optional[SaveStrategy] = None
    remote_checkpoint_every_steps: int = 100
    zero_stage: int = 1


@dataclass
class ManagementStack:
    """One job plus its fully wired management entourage."""

    job: TrainingJob
    collector: MetricsCollector
    detector: AnomalyDetector
    inspections: InspectionEngine
    diagnoser: Diagnoser
    replay: DualPhaseReplay
    analyzer: RuntimeAnalyzer
    tracer: OnDemandTracer
    hotupdate: HotUpdateManager
    ckpt_manager: Optional[CheckpointManager]
    incident_log: IncidentLog
    controller: RobustController
    #: Elastic warm-pool resizer, when the stack owns its pool's
    #: sizing (single-job systems); None on shared-pool platforms.
    resizer: Optional[StandbyResizer] = None
    #: Aggregation config kept so elastic resizes can rebuild the
    #: topology-bound analyzer; None on stacks that never resize.
    aggregation: Optional[AggregationConfig] = None

    def launch(self, machine_ids: List[int], at_step: int = 0) -> None:
        """Bind machines and start monitor + job (standbys are the
        owner's concern — pools are shared on the platform)."""
        self.job.bind_machines(machine_ids)
        self.collector.start()
        self.inspections.start()
        if self.resizer is not None:
            self.resizer.start()
        self.job.start(at_step)

    def shutdown(self) -> None:
        """Stop the job for good: retire the controller (in-flight
        recovery callbacks become no-ops), kill the training
        processes, and silence the periodic monitor tasks."""
        self.controller.retire()
        self.job.suspend()
        self.collector.stop()
        self.inspections.stop()
        if self.resizer is not None:
            self.resizer.stop()

    def pause(self) -> None:
        """Reversibly stop the job (preemption or resize): suspend the
        controller's recovery (in-flight chains die at the epoch
        bump), kill the training processes, silence the monitors.
        Unlike :meth:`shutdown`, :meth:`resume` brings it back."""
        self.controller.suspend_recovery()
        self.job.suspend()
        self.collector.stop()
        self.inspections.stop()
        if self.ckpt_manager is not None:
            self.ckpt_manager.enabled = False

    def resume(self, machine_ids: List[int], at_step: int = 0) -> None:
        """Relaunch a paused stack on (possibly different) machines,
        restarting the job from the ``at_step`` checkpoint."""
        self.job.bind_machines(machine_ids)
        self.collector.start()
        self.inspections.start()
        self.controller.resume_recovery()
        if self.ckpt_manager is not None:
            self.ckpt_manager.enabled = True
            self.ckpt_manager.after_recovery(at_step)
        self.job.restart(at_step)

    def resize(self, parallelism, machine_ids: List[int],
               at_step: int = 0) -> None:
        """Elastic shrink/grow: relaunch a paused stack under a new
        data-parallel layout, rebinding every topology-derived
        component (rank topology, backup plan, shard sizes, runtime
        analyzer) before restarting from the boundary checkpoint."""
        self.job.rebind_parallelism(parallelism, machine_ids)
        if self.ckpt_manager is not None:
            from repro.parallelism import zero_shard_sizes

            shard_sizes = zero_shard_sizes(
                self.job.config.model.num_params,
                tp=parallelism.tp, pp=parallelism.pp, dp=parallelism.dp,
                zero_stage=1)
            self.ckpt_manager.rebind(at_step, shard_sizes=shard_sizes)
        self.analyzer = RuntimeAnalyzer(
            self.job.topology, self.aggregation or AggregationConfig())
        self.controller.analyzer = self.analyzer
        self.collector.start()
        self.inspections.start()
        self.controller.resume_recovery()
        if self.ckpt_manager is not None:
            self.ckpt_manager.enabled = True
        self.job.restart(at_step)


def build_management_stack(sim: Simulator, cluster: Cluster,
                           pool: MachinePool, injector: FaultInjector,
                           job_config: TrainingJobConfig,
                           diag_rng: RngStreams,
                           replay_rng: Optional[RngStreams] = None,
                           config: Optional[StackConfig] = None
                           ) -> ManagementStack:
    """Construct the full per-job management stack (the Fig. 4 wiring).

    ``diag_rng``/``replay_rng`` are the RNG streams handed to the
    diagnoser and the dual-phase replay; the single-job system passes
    one shared stream for both (its historical behaviour), while the
    platform forks a named stream per job so jobs stay decorrelated.
    """
    config = config or StackConfig()
    if replay_rng is None:
        replay_rng = diag_rng
    job = TrainingJob(
        sim, job_config, injector=injector,
        mfu_model=MfuModel(config.initial_code_profile))
    collector = MetricsCollector(sim, job, config.collector)
    detector = AnomalyDetector(sim, collector, config.detector)
    inspections = InspectionEngine(
        sim, cluster, lambda: job.machines, config.inspections)
    diagnoser = Diagnoser(cluster, diag_rng,
                          use_real_minigpt=config.use_real_minigpt)
    replay = DualPhaseReplay(cluster, replay_rng)
    analyzer = RuntimeAnalyzer(job.topology, config.aggregation)
    tracer = OnDemandTracer(sim, job)
    hotupdate = HotUpdateManager(
        sim, initial_profile=config.initial_code_profile)
    ckpt_manager: Optional[CheckpointManager] = None
    if config.checkpointing:
        from repro.parallelism import zero_shard_sizes

        shard_sizes = zero_shard_sizes(
            job_config.model.num_params,
            tp=job_config.parallelism.tp,
            pp=job_config.parallelism.pp,
            dp=job_config.parallelism.dp,
            zero_stage=config.zero_stage)
        tiers = StorageTiers(machine_spec=cluster.spec.machine_spec)
        ckpt_manager = CheckpointManager(
            sim, job, shard_sizes, tiers,
            strategy=config.checkpoint_strategy or ByteRobustSave(),
            remote_every_steps=config.remote_checkpoint_every_steps)
    incident_log = IncidentLog()
    controller = RobustController(
        sim, job, pool, injector, diagnoser, replay, analyzer, tracer,
        hotupdate, standby_policy=config.standby,
        ckpt_manager=ckpt_manager, detector=detector,
        policy=config.policy, incident_log=incident_log,
        config=config.controller)
    detector.add_listener(controller.on_anomaly)
    inspections.add_listener(controller.on_inspection_event)
    # optional components append *after* the pinned wiring above so the
    # default construction order stays byte-identical for equivalence
    resizer: Optional[StandbyResizer] = None
    if config.standby_resize is not None:
        resizer = StandbyResizer(sim, pool, sizing=config.standby,
                                 config=config.standby_resize)
    return ManagementStack(
        job=job, collector=collector, detector=detector,
        inspections=inspections, diagnoser=diagnoser, replay=replay,
        analyzer=analyzer, tracer=tracer, hotupdate=hotupdate,
        ckpt_manager=ckpt_manager, incident_log=incident_log,
        controller=controller, resizer=resizer,
        aggregation=config.aggregation)
