"""In-place hot updates and code rollback (Sec. 6.1).

Manual restarts for code changes are *the* dominant interruption class
(17.3% of Table 1).  The hot-update manager exploits two observations:

* restarting in place — same machines, same pods — is an order of
  magnitude cheaper than rescheduling, and keeps the environment fixed
  so post-restart failures are attributable;
* failures are frequent enough (every few hours at scale) that
  non-critical updates can wait and ride along with the next
  failure-triggered restart ("lazy update"), at zero extra restart
  cost.  A trigger window (default 24 h) bounds the wait.

Every applied update is persisted in the version history, making the
current code state traceable and rollback well-defined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.sim import Simulator
from repro.training.metrics import CodeVersionProfile


@dataclass
class CodeUpdate:
    """One requested code/data change."""

    version: str
    profile: CodeVersionProfile
    #: Critical updates (bug fixes) apply immediately; others lazily.
    critical: bool = False
    #: Set by the workload when the new version carries a latent bug.
    introduces_bug: bool = False
    requested_at: float = -1.0
    applied_at: Optional[float] = None

    @property
    def pending(self) -> bool:
        return self.applied_at is None


class HotUpdateManager:
    """Queues, merges, applies, and rolls back code updates."""

    def __init__(self, sim: Simulator,
                 initial_profile: Optional[CodeVersionProfile] = None,
                 trigger_window_s: float = 24 * 3600.0):
        self.sim = sim
        self.trigger_window_s = trigger_window_s
        base = initial_profile or CodeVersionProfile("v0", 0.30)
        #: applied version history, oldest first (index 0 = baseline)
        self.history: List[CodeUpdate] = [CodeUpdate(
            version=base.version, profile=base, requested_at=0.0,
            applied_at=0.0)]
        self.pending: List[CodeUpdate] = []
        #: invoked when a *critical* update or an expired window demands
        #: an immediate restart (the controller wires this up)
        self.on_update_required: Optional[Callable[[CodeUpdate], None]] = None
        self._window_handle = None

    # ------------------------------------------------------------------
    @property
    def current(self) -> CodeUpdate:
        return self.history[-1]

    @property
    def current_profile(self) -> CodeVersionProfile:
        return self.current.profile

    def request(self, update: CodeUpdate) -> None:
        """Register a code change.

        Critical changes fire ``on_update_required`` immediately;
        non-critical ones wait for the next failure-triggered restart
        or the trigger window, whichever comes first.
        """
        update.requested_at = self.sim.now
        self.pending.append(update)
        if update.critical:
            if self.on_update_required is not None:
                self.on_update_required(update)
        else:
            self._arm_window()

    def _arm_window(self) -> None:
        if self._window_handle is not None:
            return
        self._window_handle = self.sim.schedule(
            self.trigger_window_s, self._window_expired)

    def _window_expired(self) -> None:
        self._window_handle = None
        stale = [u for u in self.pending if u.pending]
        if stale and self.on_update_required is not None:
            self.on_update_required(stale[0])

    # ------------------------------------------------------------------
    def apply_pending(self) -> List[CodeUpdate]:
        """Merge all pending updates into the restart happening now.

        Returns the updates applied (possibly empty).  Called by the
        controller during every restart, which is what makes lazy
        updates free.
        """
        applied = []
        for update in self.pending:
            update.applied_at = self.sim.now
            self.history.append(update)
            applied.append(update)
        self.pending.clear()
        if self._window_handle is not None:
            self._window_handle.cancel()
            self._window_handle = None
        return applied

    def has_pending(self) -> bool:
        return bool(self.pending)

    # ------------------------------------------------------------------
    def can_rollback(self) -> bool:
        return len(self.history) > 1

    def rollback(self) -> CodeUpdate:
        """Revert to the previous stable version.

        Returns the update that was rolled back.  The reverted version
        is *removed* from history (it is the suspected bug carrier);
        re-applying it later requires a fresh request.
        """
        if not self.can_rollback():
            raise RuntimeError("already at the baseline version")
        return self.history.pop()

    def versions_applied(self) -> List[str]:
        return [u.version for u in self.history]
