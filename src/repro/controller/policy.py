"""The automated fault-tolerance policy of Fig. 5, as pure logic.

The policy decides *what to do next* given how an incident entered the
pipeline and how far the escalation has progressed; the controller
executes the decision.  Keeping the decision function pure makes the
Fig. 5 graph auditable and unit-testable in isolation.

Escalation ladder for a recurring incident (Fig. 5 steps 5–9):

    fresh ──stop-time──▶ suspects? evict : REATTEMPT
          ──fails again──▶ stop-time ──▶ suspects? evict : ROLLBACK
          ──fails again──▶ DUAL-PHASE REPLAY ──▶ suspects? evict
          ──nothing──▶ escalate to humans (No Conclusion)

A job surviving ``stable_window_s`` after recovery resets the ladder.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PolicyAction(enum.Enum):
    """What the controller should do for an incident."""

    EVICT_AND_RESTART = "evict_and_restart"           # Fig. 5 eviction arms
    ROLLBACK_AND_RESTART = "rollback_and_restart"     # step 2 / 6
    REATTEMPT = "reattempt"                           # step 5
    STOP_TIME_CHECKS = "stop_time_checks"             # step 3
    AGGREGATION_ANALYSIS = "aggregation_analysis"     # Sec. 5 path
    DUAL_PHASE_REPLAY = "dual_phase_replay"           # step 8
    HOT_UPDATE_RESTART = "hot_update_restart"         # manual restarts
    TOLERATE = "tolerate"                             # transient network
    ESCALATE_HUMAN = "escalate_human"                 # no conclusion


class EscalationLevel(enum.IntEnum):
    """How far down the Fig. 5 ladder this incident chain has gone."""

    FRESH = 0
    REATTEMPTED = 1
    ROLLED_BACK = 2
    REPLAYED = 3
    ESCALATED = 4


class IncidentEntry(enum.Enum):
    """How the incident entered the policy (the Fig. 5 entrypoints)."""

    HIGH_CONFIDENCE_INSPECTION = "high_confidence_inspection"
    NETWORK_INSPECTION = "network_inspection"
    CRASH_WITH_MACHINES = "crash_with_machines"
    USER_SPACE_ERROR = "user_space_error"
    CRASH_NO_CULPRIT = "crash_no_culprit"
    NAN_METRIC = "nan_metric"
    HANG_SUSPECT = "hang_suspect"
    MFU_DECLINE = "mfu_decline"
    MANUAL_UPDATE = "manual_update"


@dataclass
class RecoveryPolicy:
    """Pure decision rules for the Fig. 5 state machine."""

    #: A recovered job surviving this long resets the escalation ladder.
    stable_window_s: float = 1800.0
    #: Network alerts tolerated within ``network_window_s`` before evicting.
    network_alert_threshold: int = 2
    network_window_s: float = 300.0

    # ------------------------------------------------------------------
    def entry_action(self, entry: IncidentEntry,
                     escalation: EscalationLevel,
                     network_alert_count: int = 0,
                     can_rollback: bool = True) -> PolicyAction:
        """First action for a newly observed incident."""
        if entry is IncidentEntry.HIGH_CONFIDENCE_INSPECTION:
            return PolicyAction.EVICT_AND_RESTART
        if entry is IncidentEntry.NETWORK_INSPECTION:
            if network_alert_count >= self.network_alert_threshold:
                return PolicyAction.EVICT_AND_RESTART
            return PolicyAction.TOLERATE
        if entry is IncidentEntry.CRASH_WITH_MACHINES:
            return PolicyAction.EVICT_AND_RESTART
        if entry is IncidentEntry.USER_SPACE_ERROR:
            if can_rollback:
                return PolicyAction.ROLLBACK_AND_RESTART
            return PolicyAction.REATTEMPT
        if entry in (IncidentEntry.CRASH_NO_CULPRIT,
                     IncidentEntry.NAN_METRIC):
            # escalating re-entries skip straight down the ladder
            if escalation >= EscalationLevel.ROLLED_BACK:
                return PolicyAction.DUAL_PHASE_REPLAY
            return PolicyAction.STOP_TIME_CHECKS
        if entry in (IncidentEntry.HANG_SUSPECT, IncidentEntry.MFU_DECLINE):
            return PolicyAction.AGGREGATION_ANALYSIS
        if entry is IncidentEntry.MANUAL_UPDATE:
            return PolicyAction.HOT_UPDATE_RESTART
        raise ValueError(f"unhandled entry {entry}")  # pragma: no cover

    def after_stop_time_checks(self, found_suspects: bool,
                               escalation: EscalationLevel,
                               can_rollback: bool = True) -> PolicyAction:
        """Fig. 5 steps 4–8: what to do with the diagnosis outcome."""
        if found_suspects:
            return PolicyAction.EVICT_AND_RESTART
        if escalation <= EscalationLevel.FRESH:
            return PolicyAction.REATTEMPT
        if escalation <= EscalationLevel.REATTEMPTED and can_rollback:
            return PolicyAction.ROLLBACK_AND_RESTART
        if escalation <= EscalationLevel.ROLLED_BACK:
            return PolicyAction.DUAL_PHASE_REPLAY
        return PolicyAction.ESCALATE_HUMAN

    def after_aggregation(self, found_suspects: bool) -> PolicyAction:
        """Sec. 5: aggregation either isolates a group or falls back."""
        if found_suspects:
            return PolicyAction.EVICT_AND_RESTART
        return PolicyAction.STOP_TIME_CHECKS

    def after_replay(self, found_suspects: bool) -> PolicyAction:
        """Fig. 5 step 9 or the No-Conclusion arm."""
        if found_suspects:
            return PolicyAction.EVICT_AND_RESTART
        return PolicyAction.ESCALATE_HUMAN

    @staticmethod
    def escalate(level: EscalationLevel,
                 action: PolicyAction) -> EscalationLevel:
        """Advance the ladder after executing ``action``."""
        if action is PolicyAction.REATTEMPT:
            return max(level, EscalationLevel.REATTEMPTED)
        if action is PolicyAction.ROLLBACK_AND_RESTART:
            return max(level, EscalationLevel.ROLLED_BACK)
        if action is PolicyAction.DUAL_PHASE_REPLAY:
            return max(level, EscalationLevel.REPLAYED)
        if action is PolicyAction.ESCALATE_HUMAN:
            return EscalationLevel.ESCALATED
        return level
