"""Warm-standby pool sizing (Sec. 6.2) and elastic resizing.

Failures at scale are overwhelmingly independent single-machine events,
so the number of machines failing within one provisioning horizon is
well modeled as Binomial(n, p): n active machines, per-machine failure
probability p over the horizon (estimated from historical daily rates).
ByteRobust provisions the P99 of that distribution as warm standbys —
enough for 99% of eviction events to be absorbed with zero scheduling
delay, without idling significant capacity.

A fleet is not a fixed-size job, though: the active machine count
moves with every arrival, completion and eviction, and a pool sized
once at start drifts out of tune.  :class:`StandbyResizer` closes that
loop — a periodic task that re-derives the target from the *current*
active fleet (either the binomial P99 or a flat target ratio) and
grows/shrinks the warm pool toward it, with a hysteresis deadband so
ordinary churn does not thrash provisioning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.pool import MachinePool
    from repro.sim import Simulator


def simultaneous_failure_pmf(n: int, p: float,
                             k_max: Optional[int] = None) -> List[float]:
    """Binomial(n, p) pmf values for k = 0..k_max (numerically stable)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    if k_max is None:
        k_max = n
    k_max = min(k_max, n)
    pmf = []
    # iterate via the recurrence pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/(1-p)
    if p == 0.0:
        return [1.0] + [0.0] * k_max
    if p == 1.0:
        return [0.0] * k_max + ([1.0] if k_max == n else [0.0])
    log_q = math.log1p(-p)
    current = math.exp(n * log_q)           # pmf(0)
    ratio = p / (1.0 - p)
    for k in range(k_max + 1):
        pmf.append(current)
        current *= (n - k) / (k + 1) * ratio
    return pmf


def binomial_quantile(n: int, p: float, q: float) -> int:
    """Smallest k with CDF(k) >= q.

    Streams the same pmf recurrence as
    :func:`simultaneous_failure_pmf` and stops at the quantile instead
    of materializing all n+1 terms — the resizer re-derives this every
    tick over fleet-sized n, where the answer sits at small k.
    """
    if not 0.0 < q < 1.0:
        raise ValueError("q must be in (0, 1)")
    if n < 1:
        raise ValueError("n must be >= 1")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    if p == 0.0:
        return 0
    if p == 1.0:
        return n
    log_q = math.log1p(-p)
    current = math.exp(n * log_q)           # pmf(0)
    ratio = p / (1.0 - p)
    cdf = 0.0
    for k in range(n + 1):
        cdf += current
        if cdf >= q:
            return k
        current *= (n - k) / (k + 1) * ratio
    return n


def binomial_p99(n: int, p: float) -> int:
    """P99 of simultaneous failures — the standby pool size."""
    return binomial_quantile(n, p, 0.99)


@dataclass
class StandbyPolicy:
    """Sizing policy for the warm-standby pool.

    ``daily_failure_prob`` is the per-machine probability of failing
    within the provisioning horizon, estimated from historical data.
    The default (0.12% per machine-day) makes the P99 column reproduce
    Table 5 exactly: 2 / 2 / 3 / 4 standbys at 128 / 256 / 512 / 1024
    machines.
    """

    daily_failure_prob: float = 0.0012
    quantile: float = 0.99
    #: never provision fewer than this many standbys
    min_standbys: int = 1

    def standby_count(self, num_active_machines: int) -> int:
        if num_active_machines <= 0:
            # an empty active fleet (dynamic platforms between jobs)
            # still keeps the configured floor warm
            return self.min_standbys
        k = binomial_quantile(num_active_machines, self.daily_failure_prob,
                              self.quantile)
        return max(self.min_standbys, k)

    def table5_row(self, num_active_machines: int,
                   gpus_per_machine: int) -> dict:
        """The #P99 column of Table 5 for one training scale."""
        count = self.standby_count(num_active_machines)
        return {
            "machines": num_active_machines,
            "gpus_per_machine": gpus_per_machine,
            "p99_standby_machines": count,
            "p99_standby_gpus": count * gpus_per_machine,
        }


@dataclass
class StandbyResizeConfig:
    """Knobs for elastic warm-pool resizing.

    ``target_ratio`` > 0 targets ``ceil(ratio * active)`` standbys;
    at 0 the target comes from the binomial :class:`StandbyPolicy`
    (the P99 sizing, now re-evaluated continuously instead of once).
    ``hysteresis`` is a deadband in machines: the resizer only acts
    when supply is more than ``hysteresis`` away from the target, so a
    single arrival or completion does not bounce a provisioning.
    """

    #: standbys per active machine (0 = use the binomial policy)
    target_ratio: float = 0.0
    #: seconds between resize evaluations
    interval_s: float = 900.0
    #: deadband in machines before any grow/shrink
    hysteresis: int = 1
    #: never shrink below this floor
    min_standbys: int = 1
    #: hard cap on the warm pool (None = uncapped)
    max_standbys: Optional[int] = None


@dataclass
class StandbyResizer:
    """Periodic elastic resizing of a shared warm-standby pool.

    Runs on the simulator's coalesced tick path
    (:meth:`~repro.sim.engine.Simulator.every_tick`), so fleets with
    many periodic tasks at the same cadence pay one heap entry.
    Supply counts in-flight provisioning, otherwise every tick during
    a pod build would re-provision the same gap; shrink only touches
    *ready* standbys (never cancels a build — a later tick reclaims
    surplus once built).
    """

    sim: "Simulator"
    pool: "MachinePool"
    sizing: StandbyPolicy = field(default_factory=StandbyPolicy)
    config: StandbyResizeConfig = field(
        default_factory=StandbyResizeConfig)
    stats: dict = field(default_factory=lambda: {
        "ticks": 0, "resizes": 0, "grown": 0, "shrunk": 0,
        "last_target": 0})
    _task: object = None

    def start(self) -> None:
        if self._task is not None:
            raise RuntimeError("resizer already started")
        self._task = self.sim.every_tick(self.config.interval_s,
                                         self.resize_once)

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    # ------------------------------------------------------------------
    def target(self) -> int:
        """Standby target for the *current* active fleet."""
        active = len(self.pool.active)
        if self.config.target_ratio > 0:
            raw = math.ceil(self.config.target_ratio * active)
        else:
            raw = self.sizing.standby_count(active)
        raw = max(self.config.min_standbys, raw)
        if self.config.max_standbys is not None:
            raw = min(self.config.max_standbys, raw)
        return raw

    def resize_once(self) -> int:
        """One evaluation; returns the signed machine delta acted on."""
        self.stats["ticks"] += 1
        target = self.target()
        self.stats["last_target"] = target
        supply = self.pool.standby_supply
        if abs(target - supply) <= self.config.hysteresis:
            return 0
        if target > supply:
            free = len(self.pool.free - self.pool.blacklist)
            grow = min(target - supply, free)
            if grow > 0:
                self.pool.provision_standbys(grow)
                self.stats["resizes"] += 1
                self.stats["grown"] += grow
            return grow
        shrink = min(supply - target, len(self.pool.standby))
        released = self.pool.release_standbys(shrink)
        if released:
            self.stats["resizes"] += 1
            self.stats["shrunk"] += len(released)
        return -len(released)

    def report(self) -> dict:
        """JSON-safe resizer rollup for ``fleet_report()``."""
        return {
            "enabled": True,
            "interval_s": float(self.config.interval_s),
            "target_ratio": float(self.config.target_ratio),
            "hysteresis": int(self.config.hysteresis),
            **{k: int(v) for k, v in sorted(self.stats.items())},
        }
