"""Warm-standby pool sizing (Sec. 6.2).

Failures at scale are overwhelmingly independent single-machine events,
so the number of machines failing within one provisioning horizon is
well modeled as Binomial(n, p): n active machines, per-machine failure
probability p over the horizon (estimated from historical daily rates).
ByteRobust provisions the P99 of that distribution as warm standbys —
enough for 99% of eviction events to be absorbed with zero scheduling
delay, without idling significant capacity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List


def simultaneous_failure_pmf(n: int, p: float, k_max: int = None) -> List[float]:
    """Binomial(n, p) pmf values for k = 0..k_max (numerically stable)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    if k_max is None:
        k_max = n
    k_max = min(k_max, n)
    pmf = []
    # iterate via the recurrence pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/(1-p)
    if p == 0.0:
        return [1.0] + [0.0] * k_max
    if p == 1.0:
        return [0.0] * k_max + ([1.0] if k_max == n else [0.0])
    log_q = math.log1p(-p)
    current = math.exp(n * log_q)           # pmf(0)
    ratio = p / (1.0 - p)
    for k in range(k_max + 1):
        pmf.append(current)
        current *= (n - k) / (k + 1) * ratio
    return pmf


def binomial_quantile(n: int, p: float, q: float) -> int:
    """Smallest k with CDF(k) >= q."""
    if not 0.0 < q < 1.0:
        raise ValueError("q must be in (0, 1)")
    cdf = 0.0
    for k, mass in enumerate(simultaneous_failure_pmf(n, p)):
        cdf += mass
        if cdf >= q:
            return k
    return n


def binomial_p99(n: int, p: float) -> int:
    """P99 of simultaneous failures — the standby pool size."""
    return binomial_quantile(n, p, 0.99)


@dataclass
class StandbyPolicy:
    """Sizing policy for the warm-standby pool.

    ``daily_failure_prob`` is the per-machine probability of failing
    within the provisioning horizon, estimated from historical data.
    The default (0.12% per machine-day) makes the P99 column reproduce
    Table 5 exactly: 2 / 2 / 3 / 4 standbys at 128 / 256 / 512 / 1024
    machines.
    """

    daily_failure_prob: float = 0.0012
    quantile: float = 0.99
    #: never provision fewer than this many standbys
    min_standbys: int = 1

    def standby_count(self, num_active_machines: int) -> int:
        if num_active_machines <= 0:
            # an empty active fleet (dynamic platforms between jobs)
            # still keeps the configured floor warm
            return self.min_standbys
        k = binomial_quantile(num_active_machines, self.daily_failure_prob,
                              self.quantile)
        return max(self.min_standbys, k)

    def table5_row(self, num_active_machines: int,
                   gpus_per_machine: int) -> dict:
        """The #P99 column of Table 5 for one training scale."""
        count = self.standby_count(num_active_machines)
        return {
            "machines": num_active_machines,
            "gpus_per_machine": gpus_per_machine,
            "p99_standby_machines": count,
            "p99_standby_gpus": count * gpus_per_machine,
        }
