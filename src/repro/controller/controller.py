"""The Robust Controller: event-driven incident handling (Fig. 5).

The controller consumes three event streams — inspection events,
metric/log anomalies, and manual update requests — and drives each
incident through the Fig. 5 policy: immediate eviction for
high-confidence signals, tolerance windows for network flaps, log-
guided stop-time checks, the reattempt → rollback → dual-phase-replay
escalation ladder, aggregation analysis for implicit failures, and
hot-update restarts for manual changes.  Every recovery path funnels
through one restart routine that merges pending lazy code updates,
chooses the machine-replacement flavour (warm standby vs reschedule),
consults the checkpoint manager for the restart step, and accounts the
incident timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.agent.tracer import OnDemandTracer
from repro.analyzer.aggregation import RuntimeAnalyzer
from repro.analyzer.failslow import FailSlowVerdict, FailSlowVoter
from repro.checkpoint.manager import CheckpointManager, RecoveryDecision, RecoverySource
from repro.cluster.faults import (
    FaultInjector,
    FaultSymptom,
    RootCause,
)
from repro.cluster.pool import MachinePool
from repro.controller.hotupdate import CodeUpdate, HotUpdateManager
from repro.controller.policy import (
    EscalationLevel,
    PolicyAction,
    RecoveryPolicy,
)
from repro.controller.standby import StandbyPolicy
from repro.core.incidents import Incident, IncidentLog, IncidentPhase
from repro.diagnosis.diagnoser import Diagnoser
from repro.diagnosis.replay import DualPhaseReplay
from repro.monitor.detectors import AnomalyDetector, AnomalyEvent, AnomalyKind
from repro.monitor.inspections import InspectionEvent, SignalConfidence
from repro.sim import Simulator
from repro.training.job import TrainingJob


class IncidentMechanism:
    """Resolution mechanism labels (the Table 4 rows)."""

    AUTOFT_ER = "AutoFT-ER"       # eviction + restart via fault tolerance
    AUTOFT_HU = "AutoFT-HU"       # hot-update restart
    ANALYZER_ER = "Analyzer-ER"   # aggregation analysis + over-eviction
    ROLLBACK = "Rollback"
    REATTEMPT = "Reattempt"
    REPLAY_ER = "Replay-ER"       # dual-phase replay + eviction
    TOLERATED = "Tolerated"
    ESCALATED = "Escalated"


#: inspection item → symptom for incident bookkeeping
_ITEM_SYMPTOM = {
    "gpu_lost": FaultSymptom.GPU_UNAVAILABLE,
    "gpu_driver_hang": FaultSymptom.GPU_UNAVAILABLE,
    "dcgm_unhealthy": FaultSymptom.GPU_UNAVAILABLE,
    "gpu_memory_error": FaultSymptom.GPU_MEMORY_ERROR,
    "gpu_high_temperature": FaultSymptom.MFU_DECLINE,
    "pcie_degraded": FaultSymptom.MFU_DECLINE,
    "nic_crash": FaultSymptom.INFINIBAND_ERROR,
    "port_flapping": FaultSymptom.INFINIBAND_ERROR,
    "switch_down": FaultSymptom.INFINIBAND_ERROR,
    "os_kernel_fault": FaultSymptom.OS_KERNEL_PANIC,
    "disk_fault": FaultSymptom.DISK_FAULT,
    "filesystem_mount": FaultSymptom.FILESYSTEM_MOUNT,
    "container_error": FaultSymptom.CONTAINER_ERROR,
    "insufficient_disk_space": FaultSymptom.DISK_SPACE,
    "cpu_oom": FaultSymptom.CPU_OOM,
    "cpu_overload": FaultSymptom.CPU_OVERLOAD,
}


@dataclass(frozen=True)
class ControllerConfig:
    """Controller knobs."""

    #: Delay for capturing stacks across all pods (tracer latency).
    trace_capture_s: float = 5.0
    #: Fail-slow voting cadence/rounds (Sec. 5.1).
    failslow_rounds: int = 5
    failslow_interval_s: float = 10.0
    #: Simulated human mean-time-to-fix for escalated incidents.
    human_fix_s: float = 2 * 3600.0
    #: Target standby pool refilled after each take (None = policy P99).
    replenish_to_p99: bool = True


class RobustController:
    """Orchestrates detection → localization → recovery for one job."""

    def __init__(self, sim: Simulator, job: TrainingJob,
                 pool: MachinePool, injector: FaultInjector,
                 diagnoser: Diagnoser, replay: DualPhaseReplay,
                 analyzer: RuntimeAnalyzer, tracer: OnDemandTracer,
                 hotupdate: HotUpdateManager,
                 standby_policy: Optional[StandbyPolicy] = None,
                 ckpt_manager: Optional[CheckpointManager] = None,
                 detector: Optional[AnomalyDetector] = None,
                 policy: Optional[RecoveryPolicy] = None,
                 incident_log: Optional[IncidentLog] = None,
                 config: Optional[ControllerConfig] = None):
        self.sim = sim
        self.job = job
        self.pool = pool
        self.injector = injector
        self.diagnoser = diagnoser
        self.replay = replay
        self.analyzer = analyzer
        self.tracer = tracer
        self.hotupdate = hotupdate
        self.standby_policy = standby_policy or StandbyPolicy()
        self.ckpt_manager = ckpt_manager
        self.detector = detector
        self.policy = policy or RecoveryPolicy()
        self.log = incident_log if incident_log is not None else IncidentLog()
        self.config = config or ControllerConfig()
        self.escalation = EscalationLevel.FRESH
        self.last_recovery_at: float = 0.0
        self._handling: Optional[Incident] = None
        self._network_alerts: List[tuple] = []   # (time, machine_ids)
        self._warn_events: List[InspectionEvent] = []
        #: times of recent aggregation-based evictions; recurring
        #: implicit failures stop over-evicting and enter the Fig. 5
        #: escalation ladder instead (the fault is clearly elsewhere)
        self._recent_analyzer_evictions: List[float] = []
        #: called with applied CodeUpdates on every restart (scenarios
        #: use it to inject latent bugs carried by new versions)
        self.on_updates_applied: Optional[
            Callable[[List[CodeUpdate]], None]] = None
        hotupdate.on_update_required = self._on_update_required
        self.suppressed_events = 0
        #: set by :meth:`retire` when the job is torn down for good —
        #: in-flight recovery callbacks become no-ops instead of
        #: restarting a job whose machines were already released
        self.retired = False
        #: reversible cousin of ``retired``: set while the job is
        #: preempted or resizing (machines released, may come back)
        self.suspended = False
        #: bumped by :meth:`suspend_recovery`; recovery callbacks armed
        #: before a pause capture the old value and die on mismatch, so
        #: a preempted-then-resumed job can never be restarted by a
        #: stale pre-preemption incident chain
        self._epoch = 0
        #: machines acquired for an in-flight recovery but not yet
        #: bound into the job (the restart delay hasn't elapsed);
        #: platforms must not treat them as anyone else's to release
        self.pending_replacements: set = set()

    def retire(self) -> None:
        """Permanently stop recovering this job (it completed or was
        torn down by its platform).  Pending scheduled recovery steps
        will return any machines they acquired and do nothing else."""
        self.retired = True

    def suspend_recovery(self) -> None:
        """Reversibly stop recovering: the job is being preempted or
        resized, its machines are (about to be) released.  In-flight
        recovery callbacks observe the epoch bump and return any
        machines they acquired instead of restarting a job that no
        longer holds its slots."""
        self._epoch += 1
        self._handling = None
        self.suspended = True

    def resume_recovery(self) -> None:
        """Re-enable recovery after :meth:`suspend_recovery` — the job
        was re-dispatched onto (possibly different) machines.  Chains
        armed before the pause stay dead: only callbacks created from
        the current epoch onward run."""
        self.suspended = False

    # ==================================================================
    # event entrypoints
    # ==================================================================
    def on_inspection_event(self, event: InspectionEvent) -> None:
        if self._busy():
            self.suppressed_events += 1
            return
        if event.confidence is SignalConfidence.WARN:
            self._warn_events.append(event)
            return
        symptom = _ITEM_SYMPTOM.get(event.item, FaultSymptom.CUDA_ERROR)
        machines = [m for m in event.machine_ids
                    if self.job.uses_machine(m)]
        if not machines:
            return
        if event.confidence is SignalConfidence.HIGH:
            incident = self._open(symptom, detail=event.item,
                                  occurred_at=self._fault_time(machines))
            incident.actions.append("inspection_high_confidence")
            self._evict_and_restart(incident, machines,
                                    IncidentMechanism.AUTOFT_ER)
            return
        # network confidence: tolerate a couple of alerts
        self._network_alerts.append((event.time, tuple(machines)))
        window = self.policy.network_window_s
        recent = [a for a in self._network_alerts
                  if a[0] >= event.time - window]
        self._network_alerts = recent
        if len(recent) >= self.policy.network_alert_threshold:
            incident = self._open(symptom, detail=event.item,
                                  occurred_at=self._fault_time(machines))
            incident.actions.append("network_alert_threshold")
            self._network_alerts.clear()
            self._evict_and_restart(incident, machines,
                                    IncidentMechanism.AUTOFT_ER)

    def on_anomaly(self, event: AnomalyEvent) -> None:
        if self._busy():
            self.suppressed_events += 1
            return
        self._maybe_reset_escalation()
        if event.kind is AnomalyKind.CRASH_WITH_MACHINES:
            incident = self._open(self._crash_symptom(event),
                                  detail=event.detail,
                                  occurred_at=self._log_time(event))
            incident.actions.append("explicit_crash")
            self._evict_and_restart(incident, event.machine_ids,
                                    IncidentMechanism.AUTOFT_ER)
        elif event.kind is AnomalyKind.USER_SPACE_ERROR:
            incident = self._open(FaultSymptom.CUDA_ERROR,
                                  detail=event.detail,
                                  occurred_at=self._log_time(event))
            incident.actions.append("user_space_error")
            if self.hotupdate.can_rollback():
                self._rollback_and_restart(incident)
            elif self.escalation < EscalationLevel.REATTEMPTED:
                self._reattempt(incident)
            else:
                # a recurring code error with nothing to roll back to:
                # only the owning team can fix it (Fig. 5's human arm)
                self._escalate(incident)
        elif event.kind is AnomalyKind.CRASH_NO_CULPRIT:
            incident = self._open(self._crash_symptom(event),
                                  detail=event.detail,
                                  occurred_at=self._log_time(event))
            self._stop_time_checks(incident, event.detail, nan=False)
        elif event.kind is AnomalyKind.NAN_METRIC:
            incident = self._open(FaultSymptom.NAN_VALUE,
                                  detail=event.detail,
                                  occurred_at=self._nan_fault_time())
            self._stop_time_checks(incident, "", nan=True)
        elif event.kind is AnomalyKind.HANG_SUSPECT:
            incident = self._open(FaultSymptom.JOB_HANG,
                                  detail=event.detail,
                                  occurred_at=self._hang_time())
            self._aggregation_for_hang(incident)
        elif event.kind is AnomalyKind.MFU_DECLINE:
            incident = self._open(FaultSymptom.MFU_DECLINE,
                                  detail=event.detail,
                                  occurred_at=self._slow_fault_time())
            self._handle_mfu_decline(incident)
        elif event.kind is AnomalyKind.LOSS_SPIKE:
            self._mitigate_loss_spike(event)

    def _mitigate_loss_spike(self, event: AnomalyEvent) -> None:
        """Algorithmic mitigation for loss spikes (Sec. 2.2): skip the
        problematic mini-batches instead of restarting.

        Production practice pauses the data stream over the offending
        window; here the job's spike factor is reset, recording an
        instantly-resolved incident with no unproductive time.
        """
        incident = self.log.open(FaultSymptom.CODE_DATA_ADJUSTMENT,
                                 detected_at=self.sim.now,
                                 occurred_at=self.sim.now,
                                 detail=f"loss spike: {event.detail}")
        incident.actions.append("skip_bad_batches")
        incident.mechanism = "BatchSkip"
        incident.localized_at = self.sim.now
        incident.recovered_at = self.sim.now
        incident.phase = IncidentPhase.RESOLVED
        self.job.loss_spike_factor = 1.0

    def request_manual_update(self, update: CodeUpdate) -> None:
        """Entry point for code/data adjustments (manual restarts)."""
        self.hotupdate.request(update)

    def _on_update_required(self, update: CodeUpdate) -> None:
        """Critical update or expired lazy window: restart now."""
        if self._busy():
            return   # it will merge into the in-flight restart
        incident = self._open(FaultSymptom.CODE_DATA_ADJUSTMENT,
                              detail=f"update {update.version}",
                              occurred_at=self.sim.now)
        incident.actions.append("hot_update")
        self._hot_update_restart(incident)

    # ==================================================================
    # incident bookkeeping helpers
    # ==================================================================
    def _busy(self) -> bool:
        return (self.retired or self.suspended
                or self._handling is not None)

    def _open(self, symptom: FaultSymptom, detail: str = "",
              occurred_at: float = -1.0) -> Incident:
        incident = self.log.open(symptom, detected_at=self.sim.now,
                                 occurred_at=occurred_at, detail=detail)
        self._handling = incident
        return incident

    def _maybe_reset_escalation(self) -> None:
        if (self.sim.now - self.last_recovery_at
                > self.policy.stable_window_s):
            self.escalation = EscalationLevel.FRESH

    def _fault_time(self, machines: Sequence[int]) -> float:
        times = [f.injected_at for m in machines
                 for f in self.injector.machine_faults(m)]
        return min(times) if times else -1.0

    def _log_time(self, event: AnomalyEvent) -> float:
        if event.log_event is not None:
            return event.log_event.time
        return -1.0

    def _hang_time(self) -> float:
        return (self.job.hung_since if self.job.hung_since is not None
                else -1.0)

    def _nan_fault_time(self) -> float:
        faults = self.injector.active_by_symptom(FaultSymptom.NAN_VALUE)
        return min((f.injected_at for f in faults), default=-1.0)

    def _slow_fault_time(self) -> float:
        faults = self.injector.active_by_symptom(FaultSymptom.MFU_DECLINE)
        return min((f.injected_at for f in faults), default=-1.0)

    @staticmethod
    def _crash_symptom(event: AnomalyEvent) -> FaultSymptom:
        msg = event.detail
        if "HDFS" in msg:
            return FaultSymptom.HDFS_ERROR
        if "NCCL" in msg or "ib" in msg.lower():
            return FaultSymptom.INFINIBAND_ERROR
        if "illegal memory access" in msg or "ECC" in msg:
            return FaultSymptom.GPU_MEMORY_ERROR
        return FaultSymptom.CUDA_ERROR

    # ==================================================================
    # localization paths
    # ==================================================================
    def _stop_time_checks(self, incident: Incident, log_message: str,
                          nan: bool) -> None:
        incident.phase = IncidentPhase.LOCALIZING
        incident.actions.append("stop_time_checks")
        self.job.suspend()
        report = self.diagnoser.diagnose(self.job.machines, log_message,
                                         nan=nan)
        epoch = self._epoch

        def after() -> None:
            if epoch != self._epoch:
                return
            self._after_stop_time(incident, report)

        self.sim.schedule(report.total_duration_s, after)

    def _after_stop_time(self, incident: Incident, report) -> None:
        action = self.policy.after_stop_time_checks(
            report.found_suspects, self.escalation,
            can_rollback=self.hotupdate.can_rollback())
        self.escalation = self.policy.escalate(self.escalation, action)
        if action is PolicyAction.EVICT_AND_RESTART:
            incident.actions.append(
                f"diagnosed:{','.join(report.tests_run)}")
            self._evict_and_restart(incident, report.suspects,
                                    IncidentMechanism.AUTOFT_ER)
        elif action is PolicyAction.REATTEMPT:
            self._reattempt(incident)
        elif action is PolicyAction.ROLLBACK_AND_RESTART:
            self._rollback_and_restart(incident)
        elif action is PolicyAction.DUAL_PHASE_REPLAY:
            self._dual_phase_replay(incident)
        else:
            self._escalate(incident)

    def _aggregation_for_hang(self, incident: Incident) -> None:
        incident.phase = IncidentPhase.LOCALIZING
        window = self.policy.stable_window_s
        self._recent_analyzer_evictions = [
            t for t in self._recent_analyzer_evictions
            if t >= self.sim.now - window]
        if len(self._recent_analyzer_evictions) >= 2:
            # over-eviction keeps failing to cure the hang: the root
            # cause is not in any evictable machine — escalate down the
            # stop-time ladder (reattempt / rollback / replay / human)
            incident.actions.append("recurring_hang")
            self._stop_time_checks(incident, "recurring hang", nan=False)
            return
        incident.actions.append("aggregation_analysis")
        epoch = self._epoch

        def run_analysis() -> None:
            if epoch != self._epoch:
                return
            capture = self.tracer.capture()
            result = self.analyzer.aggregate(
                capture.traces, slot_to_machine=self.job.slot_to_machine)
            action = self.policy.after_aggregation(result.found_suspects)
            if action is PolicyAction.EVICT_AND_RESTART:
                incident.actions.append(
                    f"isolated:{result.shared_dim}_group")
                # corroborate with the flight recorder: the collective
                # launch history should place the laggards inside the
                # same eviction set (Sec. 7's NCCL-timeout workflow)
                recorder = self.tracer.flight_recorder
                laggard_slots = set(recorder.suspect_machines())
                if laggard_slots:
                    laggard_phys = {
                        self.job.slot_to_machine.get(s, s)
                        for s in laggard_slots}
                    agree = laggard_phys <= set(result.eviction_machines)
                    incident.actions.append(
                        "flight_recorder:"
                        + ("corroborates" if agree else "diverges"))
                self._recent_analyzer_evictions.append(self.sim.now)
                self._evict_and_restart(incident, result.eviction_machines,
                                        IncidentMechanism.ANALYZER_ER)
            else:
                self._stop_time_checks(incident, "hang with no outliers",
                                       nan=False)

        self.sim.schedule(self.config.trace_capture_s, run_analysis)

    def _handle_mfu_decline(self, incident: Incident) -> None:
        incident.phase = IncidentPhase.LOCALIZING
        # corroborate with WARN inspections (thermal throttling) first
        recent = [e for e in self._warn_events
                  if e.time >= self.sim.now - 600.0
                  and any(self.job.uses_machine(m) for m in e.machine_ids)]
        if recent:
            machines = sorted({m for e in recent for m in e.machine_ids
                               if self.job.uses_machine(m)})
            incident.actions.append("warn_corroboration")
            self._evict_and_restart(incident, machines,
                                    IncidentMechanism.AUTOFT_ER)
            return
        incident.actions.append("failslow_voting")
        epoch = self._epoch
        voter = FailSlowVoter(self.analyzer,
                              rounds=self.config.failslow_rounds,
                              interval_s=self.config.failslow_interval_s)
        voter.run(self.sim, lambda: self.tracer.capture().traces,
                  slot_to_machine=self.job.slot_to_machine,
                  done=lambda verdict: (
                      None if epoch != self._epoch
                      else self._after_failslow(incident, verdict)))

    def _after_failslow(self, incident: Incident,
                        verdict: FailSlowVerdict) -> None:
        if verdict.found_suspects:
            incident.actions.append(
                f"degrader:{verdict.degrader}")
            self._evict_and_restart(incident, verdict.eviction_machines,
                                    IncidentMechanism.ANALYZER_ER)
        else:
            self._stop_time_checks(incident, "mfu decline, no degrader",
                                   nan=False)

    def _dual_phase_replay(self, incident: Incident) -> None:
        incident.actions.append("dual_phase_replay")
        self.job.suspend()
        machines = self.job.machines
        pp_span = len(self.job.topology.machines_of_group(0, "pp"))
        m = self.replay.recommended_group_size(
            pp_size=pp_span, dp_size=self.job.config.parallelism.dp,
            num_machines=len(machines))
        result = self.replay.locate_faulty_machines(machines, m=m)
        # each replay group runs the job at a reduced DP size, which
        # requires resharding the checkpoint into the smaller layout
        # (ByteCheckpoint-style load-time resharding) — add that cost
        result.duration_s += self._replay_reshard_seconds(m)
        action = self.policy.after_replay(result.found_suspects)
        epoch = self._epoch

        def conclude() -> None:
            if epoch != self._epoch:
                return
            if action is PolicyAction.EVICT_AND_RESTART:
                incident.actions.append(
                    f"replay_isolated:{result.suspects}")
                self._evict_and_restart(incident, result.suspects,
                                        IncidentMechanism.REPLAY_ER)
            else:
                self._escalate(incident)

        self.sim.schedule(result.duration_s, conclude)

    def _replay_reshard_seconds(self, group_machines: int) -> float:
        """Checkpoint reshard cost for a reduced-DP replay group."""
        from repro.checkpoint.reshard import (
            plan_reshard,
            reshard_load_seconds,
        )
        from repro.parallelism import (
            ParallelismConfig,
            zero_shard_sizes,
        )

        par = self.job.config.parallelism
        group_gpus = group_machines * par.gpus_per_machine
        reduced_dp = max(1, group_gpus // (par.tp * par.pp))
        if reduced_dp >= par.dp:
            return 0.0      # nothing shrinks; the checkpoint fits as-is
        try:
            target = ParallelismConfig(
                tp=par.tp, pp=par.pp, dp=reduced_dp,
                ep=min(par.ep, reduced_dp),
                gpus_per_machine=par.gpus_per_machine)
        except ValueError:
            return 0.0      # group shape incompatible: replay re-inits
        model = self.job.config.model
        full = zero_shard_sizes(model.num_params, tp=1, pp=1, dp=1,
                                zero_stage=0)
        plan = plan_reshard(par, target,
                            model_total_bytes=full.model_bytes,
                            optimizer_total_bytes=full.optimizer_bytes)
        return reshard_load_seconds(plan)

    # ==================================================================
    # recovery executors
    # ==================================================================
    def _evict_and_restart(self, incident: Incident,
                           machines: Sequence[int],
                           mechanism: str) -> None:
        if self.retired or self.suspended:
            return
        incident.localized_at = self.sim.now
        incident.phase = IncidentPhase.RECOVERING
        incident.mechanism = mechanism
        job_machines = [m for m in machines if self.job.uses_machine(m)]
        incident.evicted_machines = list(job_machines)
        self.job.suspend()
        if not job_machines:
            self._restart_in_place(
                incident, self.pool.times.process_relaunch_s)
            return
        self.pool.evict(job_machines)
        self._replenish_standbys()
        self._acquire_replacements(incident, job_machines, acquired=[])

    def _acquire_replacements(self, incident: Incident,
                              evicted: List[int],
                              acquired: List[int],
                              epoch: Optional[int] = None) -> None:
        """Gather replacement machines: standbys first, then free pool;
        if the cluster is fully drained (everything in repair), wait for
        replenishment and retry — the paper's "training restarts when
        all needed machines finish their pod environment initialization".
        """
        if epoch is None:
            epoch = self._epoch
        if self.retired or epoch != self._epoch:
            self.pool.release([m for m in acquired
                               if m in self.pool.active])
            self.pending_replacements.difference_update(acquired)
            return
        needed = len(evicted) - len(acquired)
        acquired.extend(self.pool.take_standbys(needed))
        needed = len(evicted) - len(acquired)
        from_free = 0
        if needed > 0:
            available = len(self.pool.free - self.pool.blacklist)
            take = min(needed, available)
            if take > 0:
                acquired.extend(self.pool.allocate_active(take))
                from_free = take
                needed -= take
        self.pending_replacements.update(acquired)
        if needed > 0:
            incident.actions.append(f"waiting_for_{needed}_machines")
            self.sim.schedule(60.0, lambda: self._acquire_replacements(
                incident, evicted, acquired, epoch))
            return
        if from_free > 0:
            delay = self.pool.times.reschedule_time(from_free)
        else:
            delay = self.pool.times.standby_wake_time(len(evicted))
        mapping = dict(zip(evicted, acquired))
        self._restart_with_ckpt(incident, evicted, mapping, delay)

    def _restart_with_ckpt(self, incident: Incident,
                           evicted: Sequence[int],
                           replacements: Dict[int, int],
                           scheduling_delay: float) -> None:
        if self.ckpt_manager is not None:
            decision = self.ckpt_manager.plan_recovery(evicted)
        else:
            decision = RecoveryDecision(
                restart_step=self.job.current_step,
                source=RecoverySource.LOCAL_MEMORY, load_seconds=1.0)
        total = scheduling_delay + decision.load_seconds
        epoch = self._epoch

        def do_restart() -> None:
            self.pending_replacements.difference_update(
                replacements.values())
            if self.retired or epoch != self._epoch:
                self.pool.release([m for m in replacements.values()
                                   if m in self.pool.active])
                if self.retired:
                    self._handling = None
                return
            self._apply_pending_updates()
            self.job.restart(decision.restart_step,
                             replacements=replacements or None)
            if self.ckpt_manager is not None:
                self.ckpt_manager.after_recovery(decision.restart_step)
            self._finish(incident)

        self.sim.schedule(total, do_restart)

    def _restart_in_place(self, incident: Incident, delay: float) -> None:
        epoch = self._epoch

        def do_restart() -> None:
            if self.retired or epoch != self._epoch:
                if self.retired:
                    self._handling = None
                return
            self._apply_pending_updates()
            self.job.restart(self._inplace_restart_step())
            if self.ckpt_manager is not None:
                self.ckpt_manager.after_recovery(self.job.current_step)
            self._finish(incident)

        self.sim.schedule(delay, do_restart)

    def _inplace_restart_step(self) -> int:
        """In-place restarts reload the local in-memory checkpoint."""
        if self.ckpt_manager is not None:
            decision = self.ckpt_manager.plan_recovery([])
            return decision.restart_step
        return self.job.current_step

    def _reattempt(self, incident: Incident) -> None:
        incident.localized_at = self.sim.now
        incident.phase = IncidentPhase.RECOVERING
        incident.mechanism = incident.mechanism or IncidentMechanism.REATTEMPT
        incident.actions.append("reattempt")
        self.escalation = self.policy.escalate(
            self.escalation, PolicyAction.REATTEMPT)
        self.job.suspend()
        self._restart_in_place(incident, self.pool.times.process_relaunch_s)

    def _rollback_and_restart(self, incident: Incident) -> None:
        incident.localized_at = self.sim.now
        incident.phase = IncidentPhase.RECOVERING
        incident.mechanism = IncidentMechanism.ROLLBACK
        incident.actions.append("rollback")
        self.escalation = self.policy.escalate(
            self.escalation, PolicyAction.ROLLBACK_AND_RESTART)
        self.job.suspend()
        rolled_back = self.hotupdate.rollback()
        # reverting the code removes the bugs that version introduced
        for fault in list(self.injector.active_faults.values()):
            if fault.root_cause is RootCause.USER_CODE:
                self.injector.clear(fault)
        self.job.mfu_model.set_profile(self.hotupdate.current_profile)
        self._restart_in_place(
            incident,
            self.pool.times.hot_update_time(self.job.num_machines))

    def _hot_update_restart(self, incident: Incident) -> None:
        incident.localized_at = self.sim.now
        incident.phase = IncidentPhase.RECOVERING
        incident.mechanism = IncidentMechanism.AUTOFT_HU
        self.job.suspend()
        self._restart_in_place(
            incident,
            self.pool.times.hot_update_time(self.job.num_machines))

    def _escalate(self, incident: Incident) -> None:
        """No conclusion: hand off to humans, then repair + restart."""
        incident.phase = IncidentPhase.ESCALATED
        incident.mechanism = IncidentMechanism.ESCALATED
        incident.localized_at = self.sim.now
        incident.actions.append("escalate_human")
        self.escalation = EscalationLevel.ESCALATED
        self.job.suspend()
        epoch = self._epoch

        def human_fix() -> None:
            if epoch != self._epoch:
                return
            # humans fix the actual root cause, wherever it hides —
            # including service-level faults with no machine to evict
            for fault in list(self.injector.active_faults.values()):
                if self.job._fault_touches_job(fault):
                    self.injector.clear(fault)
            self.escalation = EscalationLevel.FRESH
            self._restart_in_place(incident,
                                   self.pool.times.process_relaunch_s)

        self.sim.schedule(self.config.human_fix_s, human_fix)

    # ==================================================================
    def _apply_pending_updates(self) -> None:
        applied = self.hotupdate.apply_pending()
        if not applied:
            return
        self.job.mfu_model.set_profile(self.hotupdate.current_profile)
        for update in applied:
            # lazy updates merged into this restart count as serviced
            # manual-restart incidents (Table 4's AutoFT-HU rows)
            if self._handling is not None and (
                    self._handling.symptom
                    is FaultSymptom.CODE_DATA_ADJUSTMENT):
                continue   # the in-flight incident already covers it
            merged = self.log.open(
                FaultSymptom.CODE_DATA_ADJUSTMENT,
                detected_at=update.requested_at,
                occurred_at=update.requested_at,
                detail=f"lazy update {update.version}")
            merged.localized_at = update.requested_at
            merged.recovered_at = self.sim.now
            merged.mechanism = IncidentMechanism.AUTOFT_HU
            merged.phase = IncidentPhase.RESOLVED
        if self.on_updates_applied is not None:
            self.on_updates_applied(applied)

    def _replenish_standbys(self) -> None:
        target = self.standby_policy.standby_count(len(self.pool.active))
        deficit = target - (self.pool.standby_count
                            + len(self.pool.provisioning))
        if deficit > 0:
            available = len(self.pool.free - self.pool.blacklist)
            if available > 0:
                self.pool.provision_standbys(min(deficit, available))

    def ensure_standbys(self) -> None:
        """Provision the initial P99 standby pool (call at job start)."""
        self._replenish_standbys()

    def _finish(self, incident: Incident) -> None:
        incident.recovered_at = self.sim.now
        if incident.phase is not IncidentPhase.ESCALATED:
            incident.phase = IncidentPhase.RESOLVED
        else:
            incident.phase = IncidentPhase.RESOLVED
        self.last_recovery_at = self.sim.now
        self._handling = None
        if self.detector is not None:
            self.detector.reset_episode()
