"""The Robust Controller (control plane).

* :mod:`repro.controller.hotupdate` — in-place hot updates: immediate
  application for critical fixes, lazy merging of non-critical updates
  into failure-triggered restarts, a 24-hour forced-apply window, and
  code rollback (Sec. 6.1);
* :mod:`repro.controller.standby` — warm-standby pool sizing at the
  P99 of a binomial simultaneous-failure model (Sec. 6.2);
* :mod:`repro.controller.policy` — the automated fault-tolerance state
  machine of Fig. 5, as pure decision logic;
* :mod:`repro.controller.controller` — the orchestrator: consumes
  inspection and anomaly events, drives stop-time checks / aggregation
  analysis / dual-phase replay, executes evictions and restarts, and
  records every incident's timeline;
* :mod:`repro.controller.stack` — the single construction path for a
  job's full management entourage (collector, detector, inspections,
  tracer, diagnoser, replay, analyzer, hot-update, checkpointing,
  controller), shared by the single-job system and the platform.
"""

from repro.controller.hotupdate import CodeUpdate, HotUpdateManager
from repro.controller.standby import (
    StandbyPolicy,
    binomial_p99,
    simultaneous_failure_pmf,
)
from repro.controller.policy import (
    EscalationLevel,
    PolicyAction,
    RecoveryPolicy,
)
from repro.controller.controller import (
    ControllerConfig,
    IncidentMechanism,
    RobustController,
)
from repro.controller.stack import (
    ManagementStack,
    StackConfig,
    build_management_stack,
)

__all__ = [
    "CodeUpdate",
    "ControllerConfig",
    "EscalationLevel",
    "HotUpdateManager",
    "IncidentMechanism",
    "ManagementStack",
    "PolicyAction",
    "RecoveryPolicy",
    "RobustController",
    "StackConfig",
    "StandbyPolicy",
    "binomial_p99",
    "build_management_stack",
    "simultaneous_failure_pmf",
]
