"""1F1B pipeline-schedule timing: bubbles, micro-batches, step time.

The job's default step-time model divides FLOPs by aggregate throughput
at the current MFU.  For studies that vary pipeline depth or
micro-batch count (e.g. replay groups with reduced DP keep PP fixed for
exactly this reason), the 1F1B schedule model makes the pipeline bubble
explicit:

    bubble_fraction = (pp - 1) / (num_microbatches + pp - 1)

which is why the paper's dual-phase replay keeps TP/PP sizes fixed —
shrinking PP would change the compute/communication pattern and
undermine reproduction fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PipelineSchedule:
    """A 1F1B schedule over ``pp`` stages and ``num_microbatches``."""

    pp: int
    num_microbatches: int
    #: Forward time of one micro-batch on one stage, seconds.
    fwd_microbatch_s: float
    #: Backward is canonically ~2x forward.
    bwd_over_fwd: float = 2.0
    #: P2P activation/gradient transfer per boundary, seconds.
    p2p_s: float = 0.0

    def __post_init__(self) -> None:
        if self.pp < 1:
            raise ValueError("pp must be >= 1")
        if self.num_microbatches < 1:
            raise ValueError("need at least one micro-batch")
        if self.fwd_microbatch_s <= 0:
            raise ValueError("micro-batch time must be positive")
        if self.bwd_over_fwd <= 0:
            raise ValueError("bwd_over_fwd must be positive")

    # ------------------------------------------------------------------
    @property
    def microbatch_s(self) -> float:
        """Fwd + bwd time of one micro-batch on one stage."""
        return self.fwd_microbatch_s * (1.0 + self.bwd_over_fwd)

    @property
    def bubble_fraction(self) -> float:
        """Idle fraction of the 1F1B schedule."""
        return (self.pp - 1) / (self.num_microbatches + self.pp - 1)

    def step_seconds(self) -> float:
        """Wall time of one optimizer step under 1F1B.

        (num_microbatches + pp - 1) micro-batch slots flow through the
        pipeline, each costing fwd+bwd plus two P2P boundaries.
        """
        slots = self.num_microbatches + self.pp - 1
        return slots * (self.microbatch_s + 2 * self.p2p_s)

    def ideal_seconds(self) -> float:
        """Bubble-free lower bound (perfect pipelining)."""
        return self.num_microbatches * (self.microbatch_s
                                        + 2 * self.p2p_s)

    def pipeline_efficiency(self) -> float:
        """ideal / actual == 1 - bubble_fraction."""
        return self.ideal_seconds() / self.step_seconds()

    # ------------------------------------------------------------------
    def with_microbatches(self, num_microbatches: int
                          ) -> "PipelineSchedule":
        return PipelineSchedule(
            pp=self.pp, num_microbatches=num_microbatches,
            fwd_microbatch_s=self.fwd_microbatch_s,
            bwd_over_fwd=self.bwd_over_fwd, p2p_s=self.p2p_s)

    def stage_busy_windows(self, stage: int) -> list:
        """(start, end) busy intervals for one stage — the idealized
        schedule used to cross-check hang-propagation assumptions."""
        if not 0 <= stage < self.pp:
            raise ValueError(f"stage {stage} out of range")
        mb = self.microbatch_s + 2 * self.p2p_s
        windows = []
        # stage s starts its first micro-batch after s warmup slots
        start = stage * (self.fwd_microbatch_s + self.p2p_s)
        for i in range(self.num_microbatches):
            windows.append((start + i * mb, start + (i + 1) * mb))
        return windows


def schedule_for_job(pp: int, global_batch: int, microbatch: int,
                     step_compute_s: float) -> PipelineSchedule:
    """Build a schedule whose total compute matches ``step_compute_s``.

    ``step_compute_s`` is the bubble-free compute time of one step (what
    the MFU model yields); the returned schedule distributes it over
    micro-batches so ``ideal_seconds() == step_compute_s``.
    """
    if global_batch % microbatch != 0:
        raise ValueError("microbatch must divide the global batch")
    num_mb = global_batch // microbatch
    fwd = step_compute_s / (num_mb * 3.0)
    return PipelineSchedule(pp=pp, num_microbatches=num_mb,
                            fwd_microbatch_s=fwd)
