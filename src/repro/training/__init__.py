"""Simulated LLM training jobs.

The training model is analytical rather than numerical: a job is a
sequence of steps whose duration follows from model FLOPs, cluster
scale, and the current code version's MFU, and whose loss follows a
deterministic (seeded) power-law curve.  Determinism per step index is
a feature — the paper notes that manual restarts intentionally roll
back a few steps to verify that loss curves re-align bit-wise, and the
reproduction preserves exactly that property.

Per-rank *stack states* are modeled explicitly so that the runtime
analyzer (Sec. 5) can aggregate realistic stack traces: when a machine
stalls mid-collective, the hang propagates along its PP group while
unaffected ranks drain to the gradient-sync barrier, reproducing the
Fig. 7 pattern.
"""

from repro.training.model import (
    ModelSpec,
    dense_70b,
    dense_llama_like,
    moe_200b,
    moe_256b,
)
from repro.training.metrics import (
    BLOCK_STEPS,
    METRICS_SCHEMA_VERSION,
    LossCurve,
    MfuModel,
    StepMetrics,
)
from repro.training.stacks import StackKind, StackTrace, render_stack
from repro.training.job import JobState, TrainingJob, TrainingJobConfig

__all__ = [
    "BLOCK_STEPS",
    "JobState",
    "LossCurve",
    "METRICS_SCHEMA_VERSION",
    "MfuModel",
    "ModelSpec",
    "StackKind",
    "StackTrace",
    "StepMetrics",
    "TrainingJob",
    "TrainingJobConfig",
    "dense_70b",
    "dense_llama_like",
    "moe_200b",
    "moe_256b",
    "render_stack",
]
