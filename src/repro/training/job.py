"""The simulated training job: steps, faults, logs, and gauges.

A :class:`TrainingJob` advances one optimizer step at a time on the
simulator.  Its step duration follows from the model's FLOPs and the
current MFU; the loss at step *s* is a pure function of *s* (see
:mod:`repro.training.metrics`).  Faults injected into the cluster reach
the job through a :class:`~repro.cluster.faults.FaultInjector` listener
and take effect according to the fault's
:class:`~repro.cluster.faults.JobEffect`:

* ``CRASH``  — the job fail-stops, emitting a log event carrying the
  fault's log signature and exit code (what the diagnoser later reads);
* ``HANG``   — the in-flight step never completes and log/metric output
  ceases: only gauges (RDMA traffic draining to zero) betray it;
* ``SLOW``   — an MFU degradation factor applies while the fault lives;
* ``NAN``    — subsequent steps emit NaN loss/grad-norm but keep running
  until somebody stops the job.

The controller talks to the job through ``suspend`` / ``restart``; the
checkpoint engine and monitor subscribe to step completions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.cluster.faults import (
    Fault,
    FaultInjector,
    JobEffect,
)
from repro.parallelism import ParallelismConfig, RankTopology
from repro.sim import Simulator
from repro.training.metrics import LossCurve, MfuModel, StepMetrics
from repro.training.model import ModelSpec
from repro.training.stacks import HangScenario


class JobState(enum.Enum):
    INIT = "init"
    RUNNING = "running"
    HUNG = "hung"
    CRASHED = "crashed"
    STOPPED = "stopped"     # suspended by the controller


@dataclass
class LogEvent:
    """One stdout/stderr line or process exit the monitor can read."""

    time: float
    level: str                  # "info" | "error"
    message: str
    exit_code: int = 0
    machine_ids: List[int] = field(default_factory=list)
    fault_id: Optional[int] = None


@dataclass
class StepRecord:
    """Execution record of one completed step (for ETTR accounting)."""

    step: int
    start: float
    end: float
    committed: bool = True      # flipped to False if rolled back


@dataclass
class TrainingJobConfig:
    model: ModelSpec
    parallelism: ParallelismConfig
    global_batch_size: int = 1024
    gpu_peak_tflops: float = 989.0
    loss_seed: int = 0
    #: Seconds of residual collective traffic after a hang starts
    #: (RDMA gauges only read zero once in-flight transfers drain).
    hang_drain_s: float = 20.0


class TrainingJob:
    """One LLM training job bound to a set of physical machines."""

    def __init__(self, sim: Simulator, config: TrainingJobConfig,
                 injector: Optional[FaultInjector] = None,
                 mfu_model: Optional[MfuModel] = None):
        self.sim = sim
        self.config = config
        self.topology = RankTopology(config.parallelism)
        self.loss_curve = LossCurve(seed=config.loss_seed)
        self.mfu_model = mfu_model or MfuModel()
        self.state = JobState.INIT
        #: logical machine slot -> physical machine id
        self.slot_to_machine: Dict[int, int] = {}
        self._machines_cache: Optional[List[int]] = None
        self._machine_to_slot: Optional[Dict[int, int]] = None
        self.current_step = 0
        self.nan_active = False
        self.loss_spike_factor = 1.0
        self.step_records: List[StepRecord] = []
        self.log_events: List[LogEvent] = []
        self.last_progress_time: float = sim.now
        self.hung_since: Optional[float] = None
        self.hang_scenario: HangScenario = HangScenario.BACKWARD_COMM
        self.stalled_ranks: List[int] = []
        #: Physical machines currently degraded by a SLOW fault.
        self.slow_machines: set = set()
        self.last_crash: Optional[LogEvent] = None
        #: subscribers called with each completed StepMetrics
        self.step_listeners: List[Callable[[StepMetrics], None]] = []
        #: per-step extra blocking seconds (checkpoint stalls etc.)
        self.overhead_providers: List[Callable[[int], float]] = []
        self._completion_handle = None
        self._step_started_at: Optional[float] = None
        self._injector = injector
        if injector is not None:
            injector.add_listener(self._on_fault_event)

    # ------------------------------------------------------------------
    # machine binding
    # ------------------------------------------------------------------
    @property
    def num_machines(self) -> int:
        return self.topology.num_machines

    @property
    def machines(self) -> List[int]:
        """Physical machine ids by slot order.

        The list is rebuilt only after a binding change; monitor sweeps
        query it tens of thousands of times between changes, so they
        share one materialization (callers must not mutate it).
        """
        cached = self._machines_cache
        if cached is None:
            cached = [self.slot_to_machine[s]
                      for s in range(self.num_machines)]
            self._machines_cache = cached
        return cached

    def bind_machines(self, machine_ids: Sequence[int]) -> None:
        if len(machine_ids) != self.num_machines:
            raise ValueError(
                f"job needs {self.num_machines} machines, "
                f"got {len(machine_ids)}")
        self.slot_to_machine = dict(enumerate(machine_ids))
        self._machines_cache = None
        self._machine_to_slot = None

    def replace_machines(self, replacements: Dict[int, int]) -> None:
        """Swap physical machines into slots (phys_old -> phys_new)."""
        inverse = {phys: slot for slot, phys in self.slot_to_machine.items()}
        for old, new in replacements.items():
            if old not in inverse:
                raise ValueError(f"machine {old} is not part of this job")
            self.slot_to_machine[inverse[old]] = new
        self._machines_cache = None
        self._machine_to_slot = None

    def rebind_parallelism(self, parallelism: ParallelismConfig,
                           machine_ids: Sequence[int]) -> None:
        """Elastic resize: adopt a new data-parallel layout and machine
        set in one move (checkpoint-boundary shrink/grow).

        The job must be suspended; callers restart it from the boundary
        step afterwards.  Step/log history survives — only the topology
        and the slot binding change.
        """
        if self.state is JobState.RUNNING:
            raise RuntimeError("suspend() before rebind_parallelism()")
        if len(machine_ids) != parallelism.num_machines:
            raise ValueError(
                f"layout needs {parallelism.num_machines} machines, "
                f"got {len(machine_ids)}")
        self.config.parallelism = parallelism
        self.topology = RankTopology(parallelism)
        self.slot_to_machine = dict(enumerate(machine_ids))
        self._machines_cache = None
        self._machine_to_slot = None

    def slot_of_machine(self, machine_id: int) -> Optional[int]:
        # Fault blast-radius checks probe every fleet-wide active fault
        # against this job on each (re)start, so the lookup must be
        # O(1); the inverse map is rebuilt only after a binding change
        # (first-wins, matching the scan it replaced).
        inverse = self._machine_to_slot
        if inverse is None:
            inverse = {}
            for slot, phys in self.slot_to_machine.items():
                inverse.setdefault(phys, slot)
            self._machine_to_slot = inverse
        return inverse.get(machine_id)

    def ranks_of_machine(self, machine_id: int) -> List[int]:
        slot = self.slot_of_machine(machine_id)
        if slot is None:
            return []
        return self.topology.ranks_on_machine(slot)

    def uses_machine(self, machine_id: int) -> bool:
        return self.slot_of_machine(machine_id) is not None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, at_step: int = 0) -> None:
        if not self.slot_to_machine:
            raise RuntimeError("bind_machines() before start()")
        self.current_step = at_step
        self.state = JobState.RUNNING
        self.nan_active = any(
            f.effect is JobEffect.NAN for f in self._active_job_faults())
        self.last_progress_time = self.sim.now
        self._schedule_step()
        # A persistent fault that crashed or hung the job strikes again
        # shortly after any restart that failed to remove it — this is
        # what drives the reattempt → rollback → replay escalation.
        for fault in self._active_job_faults():
            if fault.effect in (JobEffect.CRASH, JobEffect.HANG):
                self.sim.schedule(
                    min(self.step_time() * 0.5, 30.0),
                    lambda fault=fault: self._reapply_if_running(fault))

    def suspend(self) -> None:
        """Controller stop: kill training processes, keep pod envs."""
        self._cancel_step()
        self.state = JobState.STOPPED
        self.hung_since = None

    def restart(self, from_step: int,
                replacements: Optional[Dict[int, int]] = None) -> None:
        """Resume from a checkpointed step, optionally on new machines.

        Steps beyond ``from_step`` that were already executed become
        uncommitted (rolled back) — their wall time turns into waste.
        """
        if replacements:
            self.replace_machines(replacements)
        for rec in self.step_records:
            if rec.step > from_step:
                rec.committed = False
        self.nan_active = False
        self.loss_spike_factor = 1.0
        self.stalled_ranks = []
        self.hung_since = None
        self._recompute_degradations()
        self.start(at_step=from_step)

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step_time(self) -> float:
        base = self.mfu_model.step_time(
            self.config.model.flops_per_step(self.config.global_batch_size),
            self.topology.world_size, self.config.gpu_peak_tflops)
        overhead = sum(p(self.current_step + 1)
                       for p in self.overhead_providers)
        return base + overhead

    def _schedule_step(self) -> None:
        self._step_started_at = self.sim.now
        self._completion_handle = self.sim.schedule(
            self.step_time(), self._complete_step)

    def _cancel_step(self) -> None:
        if self._completion_handle is not None:
            self._completion_handle.cancel()
            self._completion_handle = None

    def _complete_step(self) -> None:
        self._completion_handle = None
        assert self._step_started_at is not None
        self.current_step += 1
        record = StepRecord(step=self.current_step,
                            start=self._step_started_at, end=self.sim.now)
        self.step_records.append(record)
        self.last_progress_time = self.sim.now
        metrics = StepMetrics(
            step=self.current_step,
            time=self.sim.now,
            duration_s=record.end - record.start,
            loss=self.loss_curve.loss(self.current_step,
                                      nan=self.nan_active,
                                      spike_factor=self.loss_spike_factor),
            grad_norm=self.loss_curve.grad_norm(
                self.current_step, nan=self.nan_active,
                spike_factor=self.loss_spike_factor),
            mfu=self.mfu_model.current_mfu(),
            tokens=(self.config.global_batch_size
                    * self.config.model.seq_len),
        )
        for listener in list(self.step_listeners):
            listener(metrics)
        if self.state is JobState.RUNNING:
            self._schedule_step()

    # ------------------------------------------------------------------
    # fault reactions
    # ------------------------------------------------------------------
    def _active_job_faults(self) -> List[Fault]:
        if self._injector is None:
            return []
        out = []
        for fault in self._injector.active_faults.values():
            if not fault.machine_ids and fault.switch_id is None:
                out.append(fault)       # service-level: affects any job
            elif any(self.uses_machine(m) for m in fault.machine_ids):
                out.append(fault)
            elif fault.switch_id is not None and any(
                    self.uses_machine(m) for m in self._switch_machines(
                        fault.switch_id)):
                out.append(fault)
        return out

    def _switch_machines(self, switch_id: int) -> List[int]:
        if self._injector is None:
            return []
        cluster = self._injector._cluster
        return [m.id for m in cluster.machines_on_switch(switch_id)]

    def _fault_touches_job(self, fault: Fault) -> bool:
        if not fault.machine_ids and fault.switch_id is None:
            return True
        if any(self.uses_machine(m) for m in fault.machine_ids):
            return True
        if fault.switch_id is not None:
            return any(self.uses_machine(m)
                       for m in self._switch_machines(fault.switch_id))
        return False

    def _reapply_if_running(self, fault: Fault) -> None:
        if (self.state is JobState.RUNNING and fault.active
                and self._fault_touches_job(fault)):
            self._apply_fault(fault)

    def _on_fault_event(self, event: str, fault: Fault) -> None:
        if self.state not in (JobState.RUNNING, JobState.HUNG):
            return
        if not self._fault_touches_job(fault):
            return
        if event == "inject":
            self._apply_fault(fault)
        else:
            self._clear_fault(fault)

    def _apply_fault(self, fault: Fault) -> None:
        if fault.effect is JobEffect.CRASH:
            self._crash(fault)
        elif fault.effect is JobEffect.HANG:
            self._hang(fault)
        elif fault.effect is JobEffect.SLOW:
            self.mfu_model.set_degradation(
                f"fault:{fault.fault_id}", 0.55)
            self.slow_machines.update(
                m for m in fault.machine_ids if self.uses_machine(m))
        elif fault.effect is JobEffect.NAN:
            self.nan_active = True
        # JobEffect.NONE: tolerated

    def _clear_fault(self, fault: Fault) -> None:
        if fault.effect is JobEffect.SLOW:
            self.mfu_model.clear_degradation(f"fault:{fault.fault_id}")
            self.slow_machines.difference_update(fault.machine_ids)
        # crashes / hangs do not self-heal when the fault clears: the
        # processes are already dead or wedged until a restart.

    def _crash(self, fault: Fault) -> None:
        self._cancel_step()
        self.state = JobState.CRASHED
        event = LogEvent(
            time=self.sim.now, level="error",
            message=fault.log_signature or fault.symptom.value,
            exit_code=fault.exit_code or 1,
            machine_ids=[m for m in fault.machine_ids
                         if self.uses_machine(m)],
            fault_id=fault.fault_id)
        self.log_events.append(event)
        self.last_crash = event

    def _hang(self, fault: Fault) -> None:
        self._cancel_step()
        self.state = JobState.HUNG
        self.hung_since = self.sim.now
        self.stalled_ranks = [
            r for m in fault.machine_ids for r in self.ranks_of_machine(m)]
        if not self.stalled_ranks:
            # service-level hang (e.g. UFM): pick the last pipeline stage
            last = [r for r in self.topology.iter_ranks()
                    if self.topology.is_last_stage(r)]
            self.stalled_ranks = last[:self.config.parallelism.tp]
        scenario = {
            "defective_cuda_cores": HangScenario.EVAL_P2P,
            "ckpt_reshard_misconfig": HangScenario.CKPT_STALL,
        }.get(fault.detail.value, HangScenario.BACKWARD_COMM)
        self.hang_scenario = scenario

    def _recompute_degradations(self) -> None:
        for name in list(self.mfu_model.degradations):
            if name.startswith("fault:"):
                self.mfu_model.clear_degradation(name)
        self.slow_machines.clear()
        for fault in self._active_job_faults():
            if fault.effect is JobEffect.SLOW:
                self.mfu_model.set_degradation(
                    f"fault:{fault.fault_id}", 0.55)
                self.slow_machines.update(
                    m for m in fault.machine_ids if self.uses_machine(m))

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def rdma_traffic_frac(self) -> float:
        """Cluster-wide RDMA traffic as a fraction of nominal."""
        if self.state is JobState.RUNNING:
            return self.mfu_model.current_mfu() / max(
                1e-9, self.mfu_model.profile.base_mfu)
        if self.state is JobState.HUNG:
            assert self.hung_since is not None
            elapsed = self.sim.now - self.hung_since
            drain = self.config.hang_drain_s
            return max(0.0, 1.0 - elapsed / drain) if drain > 0 else 0.0
        return 0.0

    def tensorcore_util_frac(self) -> float:
        """TensorCore utilization as a fraction of the healthy level."""
        if self.state is JobState.RUNNING:
            return self.mfu_model.current_mfu() / max(
                1e-9, self.mfu_model.profile.base_mfu)
        return 0.0

    def seconds_since_progress(self) -> float:
        return self.sim.now - self.last_progress_time

    def committed_steps(self) -> List[StepRecord]:
        return [r for r in self.step_records if r.committed]

    def wasted_step_seconds(self) -> float:
        return sum(r.end - r.start for r in self.step_records
                   if not r.committed)

    def loss_series(self) -> List[tuple]:
        """(step, loss) for committed steps, in execution order."""
        return [(r.step, self.loss_curve.loss(r.step))
                for r in self.committed_steps()]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<TrainingJob {self.config.model.name} "
                f"{self.state.value} step={self.current_step}>")
