"""Multi-stage pretraining recipe (paper Fig. 1).

LLM pretraining is not one long homogeneous run: it moves through
stages (warmup → general → enhance → long-context → anneal) that change
data mixture, context length, machine allocation, and — critically for
robustness — the *rate of user-code churn*.  The recipe model feeds the
workload generators: stages with higher churn produce more manual
restarts and more user-code faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class RecipeStage:
    """One stage of the pretraining recipe."""

    name: str
    #: Fraction of the full job's steps spent in this stage.
    step_fraction: float
    #: Context length used during the stage.
    seq_len: int
    #: Fraction of the full machine allocation in use.
    scale_fraction: float = 1.0
    #: Expected manual code/data adjustments per day of the stage.
    code_churn_per_day: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.step_fraction <= 1:
            raise ValueError("step_fraction must be in (0, 1]")
        if not 0 < self.scale_fraction <= 1:
            raise ValueError("scale_fraction must be in (0, 1]")
        if self.seq_len <= 0:
            raise ValueError("seq_len must be positive")


@dataclass(frozen=True)
class PretrainRecipe:
    """An ordered list of stages summing to the whole job."""

    stages: List[RecipeStage] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("recipe needs at least one stage")
        total = sum(s.step_fraction for s in self.stages)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(
                f"stage step fractions must sum to 1, got {total}")

    def stage_at(self, progress: float) -> RecipeStage:
        """Stage active at normalized job progress ``progress`` ∈ [0, 1]."""
        if not 0.0 <= progress <= 1.0:
            raise ValueError("progress must be in [0, 1]")
        acc = 0.0
        for stage in self.stages:
            acc += stage.step_fraction
            if progress <= acc + 1e-12:
                return stage
        return self.stages[-1]

    def stage_boundaries(self, total_steps: int) -> List[tuple]:
        """(stage, first_step, last_step) tuples over ``total_steps``."""
        out = []
        start = 0
        for stage in self.stages:
            count = round(stage.step_fraction * total_steps)
            end = min(total_steps, start + count)
            out.append((stage, start, max(start, end - 1)))
            start = end
        return out


def standard_five_stage_recipe() -> PretrainRecipe:
    """The paper's Fig. 1 pipeline: warmup through anneal.

    Churn rates encode the paper's observation that warmup sees frequent
    code tweaks, the long-context stage integrates scenario-tailored
    engineering (HDP etc.), and the anneal stage is comparatively calm.
    """
    return PretrainRecipe(stages=[
        RecipeStage("warmup", step_fraction=0.05, seq_len=8192,
                    scale_fraction=0.1, code_churn_per_day=4.0),
        RecipeStage("general", step_fraction=0.55, seq_len=8192,
                    scale_fraction=1.0, code_churn_per_day=1.0),
        RecipeStage("enhance", step_fraction=0.20, seq_len=8192,
                    scale_fraction=1.0, code_churn_per_day=1.5),
        RecipeStage("long_context", step_fraction=0.12, seq_len=262144,
                    scale_fraction=1.0, code_churn_per_day=2.5),
        RecipeStage("anneal", step_fraction=0.08, seq_len=8192,
                    scale_fraction=0.8, code_churn_per_day=0.5),
    ])
