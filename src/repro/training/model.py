"""Model specifications: parameter counts, FLOPs, and presets.

FLOPs use the standard 6·N·T approximation for dense transformers
(forward + backward over T tokens of an N-parameter model); MoE models
use their *activated* parameter count.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelSpec:
    """An LLM to be trained."""

    name: str
    #: Total parameters (all experts for MoE).
    num_params: int
    #: Parameters active per token (== num_params for dense models).
    activated_params: int
    num_layers: int
    seq_len: int = 8192
    is_moe: bool = False
    num_experts: int = 1

    def __post_init__(self) -> None:
        if self.num_params <= 0 or self.activated_params <= 0:
            raise ValueError("parameter counts must be positive")
        if self.activated_params > self.num_params:
            raise ValueError("activated params cannot exceed total params")
        if self.num_layers <= 0:
            raise ValueError("num_layers must be positive")

    def flops_per_token(self) -> float:
        """Training FLOPs per token (fwd + bwd), 6·N_activated."""
        return 6.0 * self.activated_params

    def flops_per_step(self, global_batch_size: int) -> float:
        """FLOPs for one optimizer step of ``global_batch_size`` sequences."""
        if global_batch_size <= 0:
            raise ValueError("global_batch_size must be positive")
        return self.flops_per_token() * global_batch_size * self.seq_len

    def with_seq_len(self, seq_len: int) -> "ModelSpec":
        """Same model at a different context length (LongCT stages)."""
        if seq_len <= 0:
            raise ValueError("seq_len must be positive")
        return ModelSpec(
            name=self.name, num_params=self.num_params,
            activated_params=self.activated_params,
            num_layers=self.num_layers, seq_len=seq_len,
            is_moe=self.is_moe, num_experts=self.num_experts)


def dense_llama_like(num_params: int = 70_000_000_000,
                     seq_len: int = 8192) -> ModelSpec:
    """A Llama-like dense model (the paper's 70+B production job)."""
    return ModelSpec(
        name=f"dense-{num_params // 10**9}b",
        num_params=num_params,
        activated_params=num_params,
        num_layers=80,
        seq_len=seq_len,
    )


def dense_70b(seq_len: int = 8192) -> ModelSpec:
    """The paper's three-month dense pretraining job (70+B)."""
    return dense_llama_like(70_000_000_000, seq_len)


def moe_200b(seq_len: int = 8192) -> ModelSpec:
    """The paper's one-month MoE pretraining job (200+B total params)."""
    return ModelSpec(
        name="moe-200b",
        num_params=200_000_000_000,
        activated_params=30_000_000_000,
        num_layers=60,
        seq_len=seq_len,
        is_moe=True,
        num_experts=64,
    )


def moe_256b(seq_len: int = 8192) -> ModelSpec:
    """The 256B sparse model used in the checkpointing evaluation."""
    return ModelSpec(
        name="moe-256b",
        num_params=256_000_000_000,
        activated_params=36_000_000_000,
        num_layers=64,
        seq_len=seq_len,
        is_moe=True,
        num_experts=64,
    )
