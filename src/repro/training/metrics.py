"""Loss, gradient-norm, and MFU models.

Loss is a deterministic function of the *step index* (power-law decay
plus seeded per-step noise), so re-running steps after a rollback
reproduces the curve bit-for-bit — mirroring the paper's observation
that engineers verify restarts by checking that loss curves overlap
exactly (Fig. 2).

MFU is the product of a code-version base (engineering optimizations
raise it across hot updates, Fig. 11) and transient degradation factors
(thermal throttling, degraded PCIe links, fail-slow NICs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.sim.rng import derive_seed


@dataclass
class StepMetrics:
    """Everything the monitor collects about one completed step."""

    step: int
    time: float
    duration_s: float
    loss: float
    grad_norm: float
    mfu: float
    tokens: int


class LossCurve:
    """Deterministic power-law loss with seeded noise and spikes.

    loss(s) = (l0 - l_inf) · (1 + s/s0)^(-alpha) + l_inf + noise(s)

    ``noise(s)`` is drawn from an RNG seeded by (root_seed, s), so the
    value at a given step never depends on execution history.
    """

    def __init__(self, l0: float = 11.0, l_inf: float = 1.6,
                 alpha: float = 0.32, s0: float = 120.0,
                 noise_scale: float = 0.012, seed: int = 0):
        if l0 <= l_inf:
            raise ValueError("initial loss must exceed asymptotic loss")
        self.l0 = l0
        self.l_inf = l_inf
        self.alpha = alpha
        self.s0 = s0
        self.noise_scale = noise_scale
        self.seed = seed
        # Per-step values are pure functions of (seed, step), so they
        # are memoized: spinning up a numpy Generator per query is the
        # expensive part, and rollbacks / report rendering re-query the
        # same steps.  Cached values are bit-identical to recomputation
        # (a cleared entry is simply recomputed), so the caches are
        # flushed at a size bound to keep month-long runs from
        # accumulating hundreds of thousands of entries.
        self._noise_cache: Dict[int, float] = {}
        self._gnorm_cache: Dict[int, float] = {}

    _CACHE_LIMIT = 100_000

    def base(self, step: int) -> float:
        return ((self.l0 - self.l_inf)
                * (1.0 + step / self.s0) ** (-self.alpha) + self.l_inf)

    def noise(self, step: int) -> float:
        cached = self._noise_cache.get(step)
        if cached is None:
            rng = np.random.default_rng(
                derive_seed(self.seed, f"loss:{step}"))
            cached = float(rng.normal(0.0, self.noise_scale))
            if len(self._noise_cache) >= self._CACHE_LIMIT:
                self._noise_cache.clear()
            self._noise_cache[step] = cached
        return cached

    def loss(self, step: int, nan: bool = False,
             spike_factor: float = 1.0) -> float:
        """Loss at ``step``; NaN faults and loss spikes override."""
        if nan:
            return float("nan")
        return (self.base(step) + self.noise(step)) * spike_factor

    def grad_norm(self, step: int, nan: bool = False,
                  spike_factor: float = 1.0) -> float:
        """Gradient norm tracks loss decay (scaled), same determinism."""
        if nan:
            return float("nan")
        cached = self._gnorm_cache.get(step)
        if cached is None:
            rng = np.random.default_rng(
                derive_seed(self.seed, f"gnorm:{step}"))
            cached = 0.4 * self.base(step) * (1.0 + float(rng.normal(0, 0.05)))
            if len(self._gnorm_cache) >= self._CACHE_LIMIT:
                self._gnorm_cache.clear()
            self._gnorm_cache[step] = cached
        return cached * spike_factor


@dataclass
class CodeVersionProfile:
    """Performance profile of one user-code version."""

    version: str
    #: Base MFU this version achieves (fraction of peak).
    base_mfu: float
    #: Probability that a restart under this version crashes due to a
    #: latent bug in the version itself (0 for vetted versions).
    bug_crash_prob: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.base_mfu <= 1.0:
            raise ValueError(f"base_mfu must be in (0, 1]: {self.base_mfu}")


class MfuModel:
    """Combines the code version's base MFU with degradation factors."""

    def __init__(self, initial_profile: Optional[CodeVersionProfile] = None):
        self.profile = initial_profile or CodeVersionProfile("v0", 0.30)
        #: Named multiplicative degradations (e.g. "thermal" → 0.6).
        self._degradations: Dict[str, float] = {}

    def set_profile(self, profile: CodeVersionProfile) -> None:
        self.profile = profile

    def set_degradation(self, name: str, factor: float) -> None:
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"degradation factor must be in (0,1]: {factor}")
        self._degradations[name] = factor

    def clear_degradation(self, name: str) -> None:
        self._degradations.pop(name, None)

    @property
    def degradations(self) -> Dict[str, float]:
        return dict(self._degradations)

    def current_mfu(self) -> float:
        mfu = self.profile.base_mfu
        for factor in self._degradations.values():
            mfu *= factor
        return mfu

    def step_time(self, flops_per_step: float, num_gpus: int,
                  gpu_peak_tflops: float) -> float:
        """Wall seconds for one step at the current effective MFU."""
        if num_gpus <= 0:
            raise ValueError("num_gpus must be positive")
        achieved = num_gpus * gpu_peak_tflops * 1e12 * self.current_mfu()
        return flops_per_step / achieved


def mfu_relative_series(mfu_values: list) -> list:
    """Relative MFU as plotted in Fig. 2 / Fig. 11: ratio to the minimum."""
    finite = [v for v in mfu_values if v is not None and not math.isnan(v)]
    if not finite:
        return []
    lo = min(finite)
    if lo <= 0:
        raise ValueError("MFU values must be positive")
    return [v / lo for v in mfu_values]
