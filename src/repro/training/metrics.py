"""Loss, gradient-norm, and MFU models.

Loss is a deterministic function of the *step index* (power-law decay
plus seeded per-step noise), so re-running steps after a rollback
reproduces the curve bit-for-bit — mirroring the paper's observation
that engineers verify restarts by checking that loss curves overlap
exactly (Fig. 2).

Noise is generated in *blocks*: one generator seeded per
``(seed, block index)`` draws :data:`BLOCK_STEPS` consecutive values in
a single vectorized call, so the per-step cost is a list index instead
of a PCG64 construction.  The value at a step is still a pure function
of ``(seed, step)`` — independent of query order, rollbacks, and cache
evictions — which is exactly the invariant the restart-verification
story rests on.

MFU is the product of a code-version base (engineering optimizations
raise it across hot updates, Fig. 11) and transient degradation factors
(thermal throttling, degraded PCIe links, fail-slow NICs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.sim.rng import derive_seed

#: Steps covered by one RNG block: a single generator construction and
#: one vectorized ``normal()`` draw serve this many consecutive steps.
BLOCK_STEPS = 4096

#: Version of the drawn-value schema.  Bump whenever the mapping from
#: ``(seed, step)`` to drawn noise / grad-norm values changes (stream
#: names, block size, draw order) — and bump
#: :data:`repro.experiments.cache.CACHE_SCHEMA_VERSION` in the same
#: commit, so sweep caches written under the old draws can never serve
#: a report again.
#: 1: one generator per step (streams ``loss:{step}``/``gnorm:{step}``)
#: 2: one generator per 4096-step block (streams ``loss-block:{i}`` /
#:    ``gnorm-block:{i}``), value at ``s`` = ``block[s % 4096]``
METRICS_SCHEMA_VERSION = 2


@dataclass
class StepMetrics:
    """Everything the monitor collects about one completed step."""

    step: int
    time: float
    duration_s: float
    loss: float
    grad_norm: float
    mfu: float
    tokens: int


class LossCurve:
    """Deterministic power-law loss with seeded noise and spikes.

    loss(s) = (l0 - l_inf) · (1 + s/s0)^(-alpha) + l_inf + noise(s)

    ``noise(s)`` is element ``s % BLOCK_STEPS`` of a block drawn from an
    RNG seeded by ``(root_seed, s // BLOCK_STEPS)``, so the value at a
    given step never depends on execution history.
    """

    def __init__(self, l0: float = 11.0, l_inf: float = 1.6,
                 alpha: float = 0.32, s0: float = 120.0,
                 noise_scale: float = 0.012, seed: int = 0):
        if l0 <= l_inf:
            raise ValueError("initial loss must exceed asymptotic loss")
        self.l0 = l0
        self.l_inf = l_inf
        self.alpha = alpha
        self.s0 = s0
        self.noise_scale = noise_scale
        self.seed = seed
        # Blocks are pure functions of (seed, block index), so they are
        # cached: re-deriving an evicted block reproduces it bit for
        # bit, which makes eviction purely a memory/speed trade.  The
        # maps are bounded per block — steady-state training touches
        # one block at a time, rollbacks a handful — so a quarter-long
        # job holds a few hundred KB instead of growing (or, as the old
        # per-step cache did, flushing to empty) every ~100k steps.
        self._noise_blocks: Dict[int, List[float]] = {}
        self._gnorm_blocks: Dict[int, List[float]] = {}

    #: Blocks retained per map before the oldest-inserted is evicted
    #: (FIFO: sequential stepping stays in one block, rollback/replay
    #: within a few — recency tracking would cost a dict move per
    #: query for nothing).
    _MAX_CACHED_BLOCKS = 4

    def base(self, step: int) -> float:
        return ((self.l0 - self.l_inf)
                * (1.0 + step / self.s0) ** (-self.alpha) + self.l_inf)

    def _block(self, cache: Dict[int, List[float]], stream: str,
               index: int, scale: float) -> List[float]:
        block = cache.get(index)
        if block is None:
            rng = np.random.default_rng(
                derive_seed(self.seed, f"{stream}:{index}"))
            # one draw per 4096 steps; .tolist() so the per-step read
            # is a plain list index returning a ready Python float
            block = rng.normal(0.0, scale, BLOCK_STEPS).tolist()
            if len(cache) >= self._MAX_CACHED_BLOCKS:
                del cache[next(iter(cache))]
            cache[index] = block
        return block

    def noise(self, step: int) -> float:
        return self._block(self._noise_blocks, "loss-block",
                           step // BLOCK_STEPS,
                           self.noise_scale)[step % BLOCK_STEPS]

    def loss(self, step: int, nan: bool = False,
             spike_factor: float = 1.0) -> float:
        """Loss at ``step``; NaN faults and loss spikes override."""
        if nan:
            return float("nan")
        return (self.base(step) + self.noise(step)) * spike_factor

    def grad_norm(self, step: int, nan: bool = False,
                  spike_factor: float = 1.0) -> float:
        """Gradient norm tracks loss decay (scaled), same determinism."""
        if nan:
            return float("nan")
        eps = self._block(self._gnorm_blocks, "gnorm-block",
                          step // BLOCK_STEPS, 0.05)[step % BLOCK_STEPS]
        return 0.4 * self.base(step) * (1.0 + eps) * spike_factor

    def cached_blocks(self) -> int:
        """Blocks currently held across both maps (tests/diagnostics)."""
        return len(self._noise_blocks) + len(self._gnorm_blocks)


@dataclass
class CodeVersionProfile:
    """Performance profile of one user-code version."""

    version: str
    #: Base MFU this version achieves (fraction of peak).
    base_mfu: float
    #: Probability that a restart under this version crashes due to a
    #: latent bug in the version itself (0 for vetted versions).
    bug_crash_prob: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.base_mfu <= 1.0:
            raise ValueError(f"base_mfu must be in (0, 1]: {self.base_mfu}")


class MfuModel:
    """Combines the code version's base MFU with degradation factors."""

    def __init__(self, initial_profile: Optional[CodeVersionProfile] = None):
        self.profile = initial_profile or CodeVersionProfile("v0", 0.30)
        #: Named multiplicative degradations (e.g. "thermal" → 0.6).
        self._degradations: Dict[str, float] = {}

    def set_profile(self, profile: CodeVersionProfile) -> None:
        self.profile = profile

    def set_degradation(self, name: str, factor: float) -> None:
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"degradation factor must be in (0,1]: {factor}")
        self._degradations[name] = factor

    def clear_degradation(self, name: str) -> None:
        self._degradations.pop(name, None)

    @property
    def degradations(self) -> Dict[str, float]:
        return dict(self._degradations)

    def current_mfu(self) -> float:
        mfu = self.profile.base_mfu
        for factor in self._degradations.values():
            mfu *= factor
        return mfu

    def step_time(self, flops_per_step: float, num_gpus: int,
                  gpu_peak_tflops: float) -> float:
        """Wall seconds for one step at the current effective MFU."""
        if num_gpus <= 0:
            raise ValueError("num_gpus must be positive")
        achieved = num_gpus * gpu_peak_tflops * 1e12 * self.current_mfu()
        return flops_per_step / achieved


def mfu_relative_series(mfu_values: list) -> list:
    """Relative MFU as plotted in Fig. 2 / Fig. 11: ratio to the minimum.

    ``None`` entries (collection gaps) and NaNs (NaN-fault steps) are
    excluded from the minimum but preserved in place, so the series
    keeps its alignment with the step axis.  An input with no finite
    value has no minimum to normalize by and yields ``[]``.
    """
    finite = [v for v in mfu_values if v is not None and not math.isnan(v)]
    if not finite:
        return []
    lo = min(finite)
    if lo <= 0:
        raise ValueError("MFU values must be positive")
    return [None if v is None else v / lo for v in mfu_values]
