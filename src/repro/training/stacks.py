"""Per-rank stack states and textual stack-trace rendering.

The runtime analyzer's aggregation (Sec. 5.1) works purely on rendered
stack strings — string matching groups identical traces, dominant
groups are deemed healthy, small groups are outliers.  This module
defines the stack states a rank can be in, the frame text each state
renders to (matching the shape shown in Fig. 7), and the **hang
propagation** model that derives every rank's stack state from the
identity of the initially-stalled ranks.

Propagation rule (backward-communication hang, the Fig. 7 case):

* the stalled rank blocks in its current collective;
* ranks in the same PP group block on their pipeline send/recv toward
  the stalled stage (downstream stages ``isend``, upstream ``irecv``);
* every other rank finishes its backward kernels and parks at gradient
  synchronization (``start_grad_sync`` → ``_reduce_scatter_tensor``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.parallelism import RankTopology


class StackKind(enum.Enum):
    """What a training process is doing when its stack is captured."""

    FORWARD_COMPUTE = "forward_compute"
    BACKWARD_COMPUTE = "backward_compute"
    GRAD_SYNC_WAIT = "grad_sync_wait"          # healthy drain point
    PP_SEND_BLOCKED = "pp_send_blocked"
    PP_RECV_BLOCKED = "pp_recv_blocked"
    TP_ALLGATHER_BLOCKED = "tp_allgather_blocked"
    EVAL_P2P_BLOCKED = "eval_p2p_blocked"
    DATALOADER_WAIT = "dataloader_wait"
    CKPT_D2H = "ckpt_d2h"
    OPTIMIZER_STEP = "optimizer_step"
    IDLE = "idle"


#: Frame text per stack kind, innermost frame last — the same shape as
#: the paper's Fig. 7 examples (user frame + torch.distributed frame).
_FRAMES: Dict[StackKind, Tuple[str, ...]] = {
    StackKind.FORWARD_COMPUTE: (
        "forward (my_megatron/model/transformer.py:1143)",
        "matmul (torch/_tensor.py:904)",
    ),
    StackKind.BACKWARD_COMPUTE: (
        "backward (my_megatron/schedules.py:612)",
        "run_backward (torch/autograd/__init__.py:251)",
    ),
    StackKind.GRAD_SYNC_WAIT: (
        "start_grad_sync (my_megatron/distributed/param_grad_buffer.py:597)",
        "_reduce_scatter_tensor (torch/distributed/distributed_c10d.py:3379)",
    ),
    StackKind.PP_SEND_BLOCKED: (
        "send_backward_recv_backward (my_megatron/communicate.py:474)",
        "isend (torch/distributed/distributed_c10d.py:1529)",
    ),
    StackKind.PP_RECV_BLOCKED: (
        "send_backward_recv_backward (my_megatron/communicate.py:474)",
        "irecv (torch/distributed/distributed_c10d.py:1569)",
    ),
    StackKind.TP_ALLGATHER_BLOCKED: (
        "backward (my_megatron/large_centralized_op_v8.py:6770)",
        "all_gather_into_tensor (torch/distributed/distributed_c10d.py:2898)",
    ),
    StackKind.EVAL_P2P_BLOCKED: (
        "evaluate_multitask (my_megatron/evaluation.py:233)",
        "irecv (torch/distributed/distributed_c10d.py:1569)",
    ),
    StackKind.DATALOADER_WAIT: (
        "next_batch (my_megatron/data/dataloader.py:388)",
        "recv_bytes (multiprocessing/connection.py:216)",
    ),
    StackKind.CKPT_D2H: (
        "async_save (byterobust/ckpt/manager.py:142)",
        "copy_ (torch/cuda/streams.py:31)",
    ),
    StackKind.OPTIMIZER_STEP: (
        "step (my_megatron/optimizer/distrib_optimizer.py:1510)",
        "adamw (torch/optim/adamw.py:339)",
    ),
    StackKind.IDLE: (
        "wait_for_activation (byterobust/agent/barrier.py:77)",
        "poll (byterobust/agent/rpc.py:58)",
    ),
}


@dataclass(frozen=True)
class StackTrace:
    """A captured stack of one process on one rank."""

    rank: int
    machine_id: int
    process_name: str
    kind: StackKind
    frames: Tuple[str, ...]

    def text(self) -> str:
        """Rendered trace used as the string-matching aggregation key."""
        return "\n".join(self.frames)


def render_stack(kind: StackKind) -> Tuple[str, ...]:
    """Frame tuple for a stack kind (innermost last)."""
    return _FRAMES[kind]


def make_trace(rank: int, machine_id: int, kind: StackKind,
               process_name: str = "trainer") -> StackTrace:
    return StackTrace(rank=rank, machine_id=machine_id,
                      process_name=process_name, kind=kind,
                      frames=render_stack(kind))


# ---------------------------------------------------------------------------
# hang propagation
# ---------------------------------------------------------------------------

class HangScenario(enum.Enum):
    """Families of hang, each with its own propagation pattern."""

    BACKWARD_COMM = "backward_comm"   # Fig. 7: mid-backward collective
    EVAL_P2P = "eval_p2p"             # Sec. 5.2 evaluation hang
    DATALOADER = "dataloader"         # stuck data fetch subprocess
    CKPT_STALL = "ckpt_stall"         # checkpoint D2H wedged


def propagate_hang(topo: RankTopology, stalled_ranks: Sequence[int],
                   scenario: HangScenario = HangScenario.BACKWARD_COMM
                   ) -> Dict[int, StackKind]:
    """Derive each rank's stack state from the initially-stalled ranks.

    Returns rank → :class:`StackKind` for the whole world.  The stalled
    ranks' own state depends on the scenario; their PP-group peers block
    on pipeline communication pointing at the stalled stage; everyone
    else drains to the healthy barrier for that scenario.
    """
    if not stalled_ranks:
        raise ValueError("need at least one stalled rank")
    for r in stalled_ranks:
        if not 0 <= r < topo.world_size:
            raise ValueError(f"stalled rank {r} out of range")

    stalled = set(stalled_ranks)
    healthy_state = (StackKind.GRAD_SYNC_WAIT
                     if scenario is HangScenario.BACKWARD_COMM
                     else StackKind.EVAL_P2P_BLOCKED
                     if scenario is HangScenario.EVAL_P2P
                     else StackKind.FORWARD_COMPUTE)
    states: Dict[int, StackKind] = {
        r: healthy_state for r in topo.iter_ranks()}

    if scenario is HangScenario.BACKWARD_COMM:
        for r in stalled:
            states[r] = StackKind.TP_ALLGATHER_BLOCKED
        for r in stalled:
            stage = topo.coord_of(r).pp
            for peer in topo.peers(r, "pp"):
                if states[peer] is not StackKind.GRAD_SYNC_WAIT:
                    continue  # already marked by another stalled rank
                peer_stage = topo.coord_of(peer).pp
                # Backward flows last→first: stages *before* the stalled
                # stage wait to receive gradients (irecv); the stage
                # immediately feeding it blocks sending (isend).
                if peer_stage == stage - 1 or (
                        stage == 0 and peer_stage == topo.config.pp - 1):
                    states[peer] = StackKind.PP_SEND_BLOCKED
                elif peer_stage < stage:
                    states[peer] = StackKind.PP_RECV_BLOCKED
                else:
                    states[peer] = StackKind.PP_SEND_BLOCKED
    elif scenario is HangScenario.EVAL_P2P:
        # Intermediate stages of the affected pipelines show a distinct
        # stuck-P2P stack; others sit at the same eval barrier.
        for r in stalled:
            states[r] = StackKind.PP_RECV_BLOCKED
            for peer in topo.peers(r, "pp"):
                states[peer] = StackKind.PP_SEND_BLOCKED
    elif scenario is HangScenario.DATALOADER:
        for r in stalled:
            states[r] = StackKind.DATALOADER_WAIT
            # first pipeline stage starves; downstream stages wait on
            # activations, rendered as pipeline recv blocks
            for peer in topo.peers(r, "pp"):
                states[peer] = StackKind.PP_RECV_BLOCKED
    elif scenario is HangScenario.CKPT_STALL:
        for r in stalled:
            states[r] = StackKind.CKPT_D2H
            for peer in topo.peers(r, "dp"):
                if peer not in stalled:
                    states[peer] = StackKind.GRAD_SYNC_WAIT
    return states


def capture_world(topo: RankTopology,
                  machine_slot_to_id: Optional[Dict[int, int]],
                  states: Dict[int, StackKind]) -> List[StackTrace]:
    """Render one :class:`StackTrace` per rank from a state map.

    ``machine_slot_to_id`` maps the topology's logical machine slot to
    the physical machine id currently filling it (None = identity).
    """
    traces = []
    for rank in topo.iter_ranks():
        slot = topo.machine_of_rank(rank)
        mid = slot if machine_slot_to_id is None else machine_slot_to_id[slot]
        traces.append(make_trace(rank, mid, states[rank]))
    return traces
