"""Topology-aware placement: where a job's machines land matters.

A down leaf switch takes out every attached machine at once — the
paper's inspection rules special-case switch events (two consecutive
unresponsive sweeps before alerting, Table 3) precisely because the
blast radius is a whole machine block.  Placement therefore trades off
two failure-domain shapes:

* **pack** — concentrate a job on as few leaf switches as possible.
  A random switch fault then hits few jobs (small fleet-wide blast
  radius) and intra-job collectives mostly stay under one switch
  (cheap traffic), but the packed job loses many machines when *its*
  switch goes down.
* **spread** — stripe a job across as many switches as possible.  No
  single switch can take out a large fraction of the job, but every
  switch now carries a slice of many jobs, so one switch fault
  disturbs many of them at once.
* **any-free** — the scheduler's original behaviour (lowest free
  machine ids first), kept as the baseline: byte-identical allocations
  to the pre-placement pool, which the sim-equivalence suite pins.

Policies are mechanism-only: they pick ``count`` machines out of the
currently usable candidates, deterministically (sorted ids, sorted
switch ids), so sweeps stay reproducible at any worker count.  The
scoring primitive is the *switch span* — how many distinct leaf
switches a machine set touches — and :func:`intra_job_switch_spans`
extends it to per-parallel-group spans by reusing
:class:`~repro.parallelism.topology.RankTopology`'s cached
machine-span queries.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Type

from repro.cluster.topology import Cluster


class PlacementError(ValueError):
    """Unknown policy name or an unsatisfiable selection."""


def switch_span(cluster: Cluster, machine_ids: Iterable[int]) -> int:
    """Number of distinct leaf switches a machine set touches
    (re-exported convenience for :meth:`Cluster.switch_span`)."""
    return cluster.switch_span(machine_ids)


def machines_by_switch(cluster: Cluster, machine_ids: Iterable[int]
                       ) -> Dict[int, List[int]]:
    """switch_id -> sorted machine ids, for the given machines only."""
    groups: Dict[int, List[int]] = {}
    for mid in sorted(machine_ids):
        groups.setdefault(cluster.machine(mid).switch_id, []).append(mid)
    return groups


def intra_job_switch_spans(cluster: Cluster, topology,
                           machine_ids: Sequence[int]
                           ) -> Dict[str, float]:
    """Mean leaf-switch span of each parallel-group dimension.

    ``topology`` is the job's
    :class:`~repro.parallelism.topology.RankTopology`;
    ``machine_ids`` is its slot -> cluster-machine binding (the order
    machines were allocated in).  Group membership is static, so the
    slot spans come from the topology's cached
    :meth:`~repro.parallelism.topology.RankTopology.machines_of_group`
    queries; only the slot -> switch mapping is recomputed here.

    A tp span of 1.0 means every tensor-parallel group lives under a
    single switch (all intra-group traffic stays leaf-local); a dp
    span equal to the job's total switch span means gradient
    all-reduces cross every switch the job touches.
    """
    spans: Dict[str, float] = {}
    for dim in ("tp", "pp", "dp"):
        per_group: List[int] = []
        for group in topology.groups(dim):
            slots = topology.machines_of_group(group[0], dim)
            per_group.append(switch_span(
                cluster, (machine_ids[s] for s in slots)))
        spans[dim] = sum(per_group) / len(per_group)
    return spans


class PlacementPolicy:
    """Chooses which free machines an allocation gets.

    ``select`` receives the usable candidates (sorted ascending, FREE
    and not blacklisted) and must return exactly ``count`` of them as
    a sorted list.  Policies never mutate pool state — the pool
    executes the choice.
    """

    name = "base"

    def select(self, cluster: Cluster, candidates: Sequence[int],
               count: int) -> List[int]:
        raise NotImplementedError

    def score(self, cluster: Cluster, machine_ids: Iterable[int]) -> int:
        """Lower = more packed: the allocation's switch span."""
        return switch_span(cluster, machine_ids)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


class AnyFreePolicy(PlacementPolicy):
    """Baseline: lowest free machine ids first (the pre-placement
    pool behaviour, pinned byte-identical by the equivalence suite)."""

    name = "any-free"

    def select(self, cluster: Cluster, candidates: Sequence[int],
               count: int) -> List[int]:
        return list(candidates[:count])


class PackPolicy(PlacementPolicy):
    """Minimize switch span: fill the emptiest-first switches whole.

    Switches are taken in order of descending free-candidate count
    (switch id breaks ties), so an allocation that fits under one
    switch lands on a single switch, and larger ones touch as few
    switches as the current free pool allows.

    At fleet scale the grouping comes from one numpy pass over the
    cluster's static machine->switch array instead of a Python dict
    build per allocation; the selection is identical (the substrate
    equivalence suite pins scalar == vectorized).
    """

    name = "pack"

    def select(self, cluster: Cluster, candidates: Sequence[int],
               count: int) -> List[int]:
        from repro.cluster.health_index import use_vectorized
        if use_vectorized(len(candidates)):
            return self._select_vectorized(cluster, candidates, count)
        groups = machines_by_switch(cluster, candidates)
        order = sorted(groups, key=lambda sw: (-len(groups[sw]), sw))
        chosen: List[int] = []
        for sw in order:
            take = min(count - len(chosen), len(groups[sw]))
            chosen.extend(groups[sw][:take])
            if len(chosen) == count:
                break
        return sorted(chosen)

    @staticmethod
    def _select_vectorized(cluster: Cluster, candidates: Sequence[int],
                           count: int) -> List[int]:
        import numpy as np
        cand = np.sort(np.fromiter(candidates, dtype=np.intp,
                                   count=len(candidates)))
        sw = cluster.switch_id_array()[cand]
        # stable sort by switch keeps each group's machines in
        # ascending-id order, exactly like the dict-of-sorted-lists
        by_switch = np.argsort(sw, kind="stable")
        uniq, starts, counts = np.unique(sw[by_switch],
                                         return_index=True,
                                         return_counts=True)
        # descending group size, switch id breaking ties (lexsort's
        # last key is primary)
        order = np.lexsort((uniq, -counts))
        chosen: List[np.ndarray] = []
        left = count
        for gi in order:
            take = min(left, int(counts[gi]))
            start = int(starts[gi])
            chosen.append(cand[by_switch[start:start + take]])
            left -= take
            if left == 0:
                break
        return np.sort(np.concatenate(chosen)).tolist()


class SpreadPolicy(PlacementPolicy):
    """Maximize switch span: stripe one machine per switch per round.

    Round-robin over switches in id order, taking the lowest free
    machine from each, so the allocation touches as many distinct
    switches as the free pool offers before doubling up anywhere.
    """

    name = "spread"

    def select(self, cluster: Cluster, candidates: Sequence[int],
               count: int) -> List[int]:
        groups = machines_by_switch(cluster, candidates)
        queues = [groups[sw] for sw in sorted(groups)]
        chosen: List[int] = []
        while len(chosen) < count:
            progressed = False
            for queue in queues:
                if queue and len(chosen) < count:
                    chosen.append(queue.pop(0))
                    progressed = True
            if not progressed:  # pragma: no cover - guarded by caller
                break
        return sorted(chosen)


PLACEMENT_POLICIES: Dict[str, Type[PlacementPolicy]] = {
    AnyFreePolicy.name: AnyFreePolicy,
    PackPolicy.name: PackPolicy,
    SpreadPolicy.name: SpreadPolicy,
}


def placement_policy_names() -> List[str]:
    return sorted(PLACEMENT_POLICIES)


def make_placement_policy(name: str) -> PlacementPolicy:
    """Instantiate a registered policy by name (the config-knob path)."""
    try:
        return PLACEMENT_POLICIES[name]()
    except KeyError:
        raise PlacementError(
            f"unknown placement policy {name!r} "
            f"(available: {', '.join(placement_policy_names())})"
        ) from None
