"""Machines, GPUs and NICs with the health state ByteRobust inspects.

Each component exposes exactly the signals the paper's real-time checks
read (Sec. 4.1): DCGM service status, PCIe bandwidth, row-remapping
pressure, temperature and Xid events on the GPU side; link state,
flapping and packet loss on the NIC side; kernel events, CPU load,
memory and disk pressure on the host side.  Faults mutate these fields;
inspections read them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional


class ComponentHealth(NamedTuple):
    """Per-subsystem health rollup of one machine.

    A plain tuple subclass so every existing ``(host, gpus, nics)``
    unpacking keeps working, but consumers address slots by name — the
    vectorized inspection sweeps index whole arrays of these flags and
    a silent slot swap would corrupt every mask at once.
    """

    host_ok: bool
    gpus_ok: bool
    nics_ok: bool


class _Inspectable:
    """Mixin: any field write bumps the owning machine's health version.

    The inspection fast path caches each machine's per-subsystem health
    rollup and revalidates it with a single integer compare; that is
    only sound if *every* mutation — the fault injector's, a repair's,
    or a test poking a field directly — invalidates the cache.  Routing
    all attribute writes through here guarantees it without asking any
    caller to cooperate.

    When the owning machine carries a ``_dirty_sink`` (installed by the
    cluster's :class:`~repro.cluster.health_index.HealthIndex`), the
    machine id is also appended there, so the struct-of-arrays mirror
    can resynchronize exactly the machines that were written.
    """

    def __setattr__(self, name: str, value) -> None:
        object.__setattr__(self, name, value)
        owner = self.__dict__.get("_owner")
        if owner is not None:
            owner.health_ver += 1
            owner.cluster_ver[0] += 1
            sink = owner.__dict__.get("_dirty_sink")
            if sink is not None:
                sink.append(owner.id)

    def _bind(self, owner: "Machine") -> None:
        self.__dict__["_owner"] = owner
        owner.health_ver += 1
        owner.cluster_ver[0] += 1
        sink = owner.__dict__.get("_dirty_sink")
        if sink is not None:
            sink.append(owner.id)


class MachineState(enum.Enum):
    """Lifecycle of a machine within the pool."""

    FREE = "free"                 # unallocated capacity
    PROVISIONING = "provisioning"  # pod env being built / self-checks
    STANDBY = "standby"           # warm standby: pod ready, low-power poll
    ACTIVE = "active"             # serving a training job
    EVICTED = "evicted"           # removed from the job, pending triage
    BLACKLISTED = "blacklisted"   # confirmed bad; IP blocked


@dataclass
class Gpu(_Inspectable):
    """One GPU's inspectable health state."""

    index: int
    #: DCGM service reachable and healthy.
    dcgm_healthy: bool = True
    #: Device visible to the driver (False == "GPU lost").
    available: bool = True
    #: Measured PCIe bandwidth as a fraction of spec (1.0 == nominal).
    pcie_bandwidth_frac: float = 1.0
    #: Pending HBM row remaps (row-remapping pressure; high == failing HBM).
    pending_row_remaps: int = 0
    #: Core temperature, Celsius.
    temperature_c: float = 55.0
    #: Driver wedged (kernel launches never return).
    driver_hung: bool = False
    #: Broken HBM cell → illegal-memory-access class errors.
    hbm_faulty: bool = False
    #: Silent-data-corruption defect (wrong arithmetic, no error signal).
    sdc_defective: bool = False
    #: Probability a single training step on this GPU reproduces the SDC.
    sdc_reproduce_prob: float = 1.0
    #: Thermal-throttling active (downclocked).
    throttled: bool = False
    #: Xid codes observed in dmesg since last drain.
    xid_events: List[int] = field(default_factory=list)

    THROTTLE_TEMP_C = 88.0

    @property
    def overheating(self) -> bool:
        return self.temperature_c >= self.THROTTLE_TEMP_C

    def healthy(self) -> bool:
        """True when no inspectable defect is present (SDC is *not*
        inspectable — that is the whole problem with it)."""
        return (self.dcgm_healthy and self.available
                and not self.driver_hung and not self.hbm_faulty
                and not self.overheating
                and self.pcie_bandwidth_frac >= 0.8
                and self.pending_row_remaps < 8)


@dataclass
class Nic(_Inspectable):
    """One RDMA NIC's inspectable state."""

    index: int
    up: bool = True
    flapping: bool = False
    packet_loss_rate: float = 0.0

    FLAP_LOSS_THRESHOLD = 0.01

    def healthy(self) -> bool:
        return (self.up and not self.flapping
                and self.packet_loss_rate < self.FLAP_LOSS_THRESHOLD)


@dataclass
class HostState(_Inspectable):
    """Host-side (non-GPU) inspectable state."""

    kernel_panic: bool = False
    #: Xid-bearing kernel events visible in dmesg.
    dmesg_xids: List[int] = field(default_factory=list)
    cpu_load_frac: float = 0.3       # 1.0 == all cores saturated
    mem_used_frac: float = 0.4
    disk_free_gb: float = 500.0
    disk_faulty: bool = False
    fs_mounted: bool = True
    container_healthy: bool = True

    CPU_OVERLOAD_FRAC = 0.95
    MEM_OOM_FRAC = 0.98
    DISK_MIN_FREE_GB = 5.0

    def healthy(self) -> bool:
        return (not self.kernel_panic and not self.disk_faulty
                and self.fs_mounted and self.container_healthy
                and self.cpu_load_frac < self.CPU_OVERLOAD_FRAC
                and self.mem_used_frac < self.MEM_OOM_FRAC
                and self.disk_free_gb > self.DISK_MIN_FREE_GB)


@dataclass
class MachineSpec:
    """Hardware parameters shared by a homogeneous fleet."""

    gpus_per_machine: int = 8
    nics_per_machine: int = 8
    #: Per-GPU dense peak, TFLOPs (bf16).  Hopper ~989; L20 ~119.
    gpu_peak_tflops: float = 989.0
    #: GPU HBM capacity, GB.
    gpu_memory_gb: float = 80.0
    #: Host DRAM, GB (paper: 2 TB).
    host_memory_gb: float = 2048.0
    #: D2H PCIe bandwidth per GPU, GB/s (paper's L20 fleet: 30 GB/s).
    pcie_bandwidth_gbps: float = 30.0
    #: Per-NIC RDMA bandwidth, GB/s (8 x 400 Gbps links).
    rdma_bandwidth_gbps: float = 50.0
    #: Local SSD write bandwidth, GB/s.
    ssd_bandwidth_gbps: float = 3.0
    #: Remote (frontend network) storage bandwidth per machine, GB/s.
    remote_fs_bandwidth_gbps: float = 0.5


class Machine:
    """A training machine: GPUs + NICs + host, plus pool lifecycle."""

    def __init__(self, machine_id: int, spec: Optional[MachineSpec] = None):
        self.id = machine_id
        self.spec = spec or MachineSpec()
        #: Monotone counter bumped by every component-state write; the
        #: inspection fast path revalidates its cached health rollup
        #: against it with one integer compare.
        self.health_ver = 0
        self._health_cache = None
        #: Shared mutable cell also bumped on every write.  A Cluster
        #: points all of its machines (and switches) at one cell, so a
        #: sweep can prove "nothing anywhere changed" with a single
        #: integer read; standalone machines get a private cell.
        self.cluster_ver = [0]
        self.gpus = [Gpu(i) for i in range(self.spec.gpus_per_machine)]
        self.nics = [Nic(i) for i in range(self.spec.nics_per_machine)]
        self.host = HostState()
        for part in (*self.gpus, *self.nics, self.host):
            part._bind(self)
        self.state = MachineState.FREE
        #: Identifier of the leaf switch this machine hangs off.
        self.switch_id: Optional[int] = None
        #: Set by the injector while a fault is active on this machine.
        self.active_fault_ids: List[int] = []

    # ------------------------------------------------------------------
    def component_health(self) -> ComponentHealth:
        """:class:`ComponentHealth`, O(1) while state is unchanged.

        The full component scan reruns only after a write bumped
        :attr:`health_ver`; between faults (the overwhelmingly common
        case for inspection sweeps) this is one compare and a tuple
        load.
        """
        cached = self._health_cache
        if cached is not None and cached[0] == self.health_ver:
            return cached[1]
        summary = ComponentHealth(
            host_ok=self.host.healthy(),
            gpus_ok=all(g.healthy() for g in self.gpus),
            nics_ok=all(n.healthy() for n in self.nics))
        self._health_cache = (self.health_ver, summary)
        return summary

    def healthy(self) -> bool:
        """All inspectable components healthy (SDC excluded by design)."""
        host_ok, gpus_ok, nics_ok = self.component_health()
        return host_ok and gpus_ok and nics_ok

    def has_sdc_defect(self) -> bool:
        return any(g.sdc_defective for g in self.gpus)

    def reset_health(self) -> None:
        """Restore all components to nominal (used after repair)."""
        self.gpus = [Gpu(i) for i in range(self.spec.gpus_per_machine)]
        self.nics = [Nic(i) for i in range(self.spec.nics_per_machine)]
        self.host = HostState()
        for part in (*self.gpus, *self.nics, self.host):
            part._bind(self)
        self.active_fault_ids.clear()

    def component_summary(self) -> Dict[str, bool]:
        """Inspection-level health rollup, one flag per subsystem."""
        return {
            "gpus": all(g.healthy() for g in self.gpus),
            "nics": all(n.healthy() for n in self.nics),
            "host": self.host.healthy(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Machine {self.id} {self.state.value} "
                f"{'ok' if self.healthy() else 'UNHEALTHY'}>")
