"""Struct-of-arrays health mirror + the substrate mode switch.

At 100k-GPU scale (~12.5k machines) the per-tick cost of fault/health
work is dominated by Python loops over machines that have not changed
since the previous tick.  :class:`HealthIndex` keeps the per-subsystem
health flags of every machine (and the up/down state of every switch)
in numpy boolean arrays, so an inspection sweep can find the unhealthy
candidates in one mask operation instead of one Python call per
machine.

Correctness rests on the same change tracking the scalar fast path
already uses: every component write bumps the machine's
``health_ver`` and the cluster-wide counter, and — once the index is
attached — appends the owner's id to a *dirty sink*.  :meth:`sync`
replays only the dirty ids through the exact scalar rollup
(:meth:`~repro.cluster.components.Machine.component_health`), so the
arrays are provably equal to what the scalar path would compute, and
machines that were never written are never touched.

The module also owns the substrate mode switch.  ``"auto"`` (default)
vectorizes only above :data:`VECTORIZE_MIN_MACHINES` — below that the
scalar loop wins on constant factors; :func:`force_substrate` pins the
mode for equivalence tests and benchmarks.  Both paths are
byte-identical by construction (the equivalence suite asserts it), so
the mode only ever changes wall-clock, never results.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Iterator, List, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.topology import Cluster

#: Below this many machines the scalar sweep's constant factors win;
#: "auto" mode only vectorizes at or above it.
VECTORIZE_MIN_MACHINES = 64

_MODE = "auto"  # "auto" | "scalar" | "vectorized"


def substrate_mode() -> str:
    """Current fault/health substrate mode."""
    return _MODE


@contextlib.contextmanager
def force_substrate(mode: str) -> Iterator[None]:
    """Pin the substrate to ``"scalar"`` or ``"vectorized"``.

    Used by the equivalence suite (run the same scenario both ways,
    assert byte-identical results) and the substrate microbenchmark.
    Not reentrant, not thread-safe — a test/bench harness, not an
    execution mode.
    """
    global _MODE
    if mode not in ("auto", "scalar", "vectorized"):
        raise ValueError(f"unknown substrate mode {mode!r}")
    saved = _MODE
    _MODE = mode
    try:
        yield
    finally:
        _MODE = saved


def use_vectorized(population: int) -> bool:
    """Should a loop over ``population`` machines take the array path?"""
    if _MODE == "auto":
        return population >= VECTORIZE_MIN_MACHINES
    return _MODE == "vectorized"


class HealthIndex:
    """Numpy mirror of per-machine subsystem health and switch state."""

    def __init__(self, cluster: "Cluster"):
        self._cluster = cluster
        n = len(cluster.machines)
        self.host_ok = np.empty(n, dtype=bool)
        self.gpus_ok = np.empty(n, dtype=bool)
        self.nics_ok = np.empty(n, dtype=bool)
        self.switch_up = np.empty(len(cluster.switches), dtype=bool)
        #: machine id -> leaf switch id (static after cluster build)
        self.machine_switch = cluster.switch_id_array()
        self._dirty_machines: List[int] = []
        self._dirty_switches: List[int] = []
        self._version = -1
        #: (ids copy, intp array) of the last query — sweeps ask about
        #: the same machine set tick after tick, so the conversion is
        #: almost always a list compare instead of an O(n) fromiter
        self._ids_cache: "Tuple[List[int], np.ndarray] | None" = None
        # route every subsequent component/switch write into the sinks
        for machine in cluster.machines:
            machine.__dict__["_dirty_sink"] = self._dirty_machines
        for switch in cluster.switches:
            switch.__dict__["_dirty_sink"] = self._dirty_switches
        self._full_sync()

    # ------------------------------------------------------------------
    def _full_sync(self) -> None:
        machines = self._cluster.machines
        for mid, machine in enumerate(machines):
            host, gpus, nics = machine.component_health()
            self.host_ok[mid] = host
            self.gpus_ok[mid] = gpus
            self.nics_ok[mid] = nics
        for sid, switch in enumerate(self._cluster.switches):
            self.switch_up[sid] = switch.up
        self._dirty_machines.clear()
        self._dirty_switches.clear()
        self._version = self._cluster.health_version()

    def sync(self) -> None:
        """Fold pending writes into the arrays (no-op when unchanged).

        One integer compare in the clean case; otherwise only the
        machines/switches whose ids reached the dirty sinks are
        recomputed — through the same scalar rollup the reference path
        reads, which is what makes the two paths interchangeable.
        """
        version = self._cluster.health_version()
        if version == self._version:
            return
        if self._dirty_machines:
            machines = self._cluster.machines
            for mid in set(self._dirty_machines):
                host, gpus, nics = machines[mid].component_health()
                self.host_ok[mid] = host
                self.gpus_ok[mid] = gpus
                self.nics_ok[mid] = nics
            self._dirty_machines.clear()
        if self._dirty_switches:
            switches = self._cluster.switches
            for sid in set(self._dirty_switches):
                self.switch_up[sid] = switches[sid].up
            self._dirty_switches.clear()
        self._version = version

    # ------------------------------------------------------------------
    def _ids_array(self, ids: Sequence[int]) -> np.ndarray:
        """``ids`` as an intp array, cached by content.

        The cache key is a *copy* of the id list — comparing against
        the caller's own (possibly mutated-in-place) object would
        always match and serve a stale array.
        """
        cached = self._ids_cache
        if cached is not None and cached[0] == ids:
            return cached[1]
        arr = np.fromiter(ids, dtype=np.intp, count=len(ids))
        self._ids_cache = (list(ids), arr)
        return arr

    def unhealthy(self, ids: Sequence[int], subsystem: str) -> List[int]:
        """Ids (in input order) whose ``subsystem`` rollup is unhealthy.

        ``subsystem`` is one of ``"host_ok" | "gpus_ok" | "nics_ok"`` —
        the :class:`~repro.cluster.components.ComponentHealth` field
        names, so the mask can't silently read the wrong slot.
        """
        self.sync()
        arr = self._ids_array(ids)
        mask: np.ndarray = getattr(self, subsystem)
        return arr[~mask[arr]].tolist()

    def switches_first_seen(self, ids: Sequence[int]
                            ) -> List[Tuple[int, bool]]:
        """``(switch_id, up)`` for the switches the machines hang off,
        in order of first appearance over ``ids`` — exactly the
        iteration order the scalar sweep's ``switches_seen`` dict has.
        """
        self.sync()
        arr = self._ids_array(ids)
        sw = self.machine_switch[arr]
        uniq, first = np.unique(sw, return_index=True)
        order = np.argsort(first, kind="stable")
        sw_ids = uniq[order]
        ups = self.switch_up[sw_ids]
        return list(zip(sw_ids.tolist(), ups.tolist()))
