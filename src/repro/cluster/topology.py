"""Cluster-level wiring: machines hanging off a two-level switch fabric.

Switch state matters because a down leaf switch simultaneously takes
every attached machine off the network — the paper's inspection rules
treat switch events specially (two consecutive unresponsive events
before alerting, Table 3) precisely because switches sometimes recover
on their own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.cluster.components import Machine, MachineSpec, MachineState


@dataclass
class Switch:
    """A leaf switch connecting a block of machines."""

    id: int
    up: bool = True
    #: Machines cabled to this switch (ids).
    machine_ids: List[int] = field(default_factory=list)

    def __setattr__(self, name: str, value) -> None:
        # switches participate in the cluster-wide change counter so
        # the inspection fast path can skip provably-unchanged sweeps;
        # once a HealthIndex is attached, writes also land in its
        # dirty sink so the switch_up array resyncs incrementally
        object.__setattr__(self, name, value)
        cell = self.__dict__.get("_ver_cell")
        if cell is not None:
            cell[0] += 1
            sink = self.__dict__.get("_dirty_sink")
            if sink is not None:
                sink.append(self.id)


@dataclass(frozen=True)
class ClusterSpec:
    """Fleet shape: how many machines, their hardware, and cabling."""

    num_machines: int
    machine_spec: MachineSpec = field(default_factory=MachineSpec)
    machines_per_switch: int = 16

    def __post_init__(self) -> None:
        if self.num_machines < 1:
            raise ValueError("cluster needs at least one machine")
        if self.machines_per_switch < 1:
            raise ValueError("machines_per_switch must be >= 1")

    @property
    def total_gpus(self) -> int:
        return self.num_machines * self.machine_spec.gpus_per_machine


class Cluster:
    """The full fleet: machines + switches with health queries."""

    def __init__(self, spec: ClusterSpec):
        self.spec = spec
        #: One shared change counter for every component in the fleet;
        #: see :meth:`health_version`.
        self._ver_cell = [0]
        #: Lazily-built struct-of-arrays mirror (:meth:`health_index`).
        self._health_index = None
        #: Lazily-built machine-id -> switch-id array
        #: (:meth:`switch_id_array`).
        self._switch_ids = None
        self.machines: List[Machine] = [
            Machine(i, spec.machine_spec) for i in range(spec.num_machines)]
        for machine in self.machines:
            machine.cluster_ver = self._ver_cell
        self.switches: List[Switch] = []
        per = spec.machines_per_switch
        for sw_id in range(-(-spec.num_machines // per)):
            ids = list(range(sw_id * per,
                             min((sw_id + 1) * per, spec.num_machines)))
            switch = Switch(id=sw_id, machine_ids=ids)
            switch.__dict__["_ver_cell"] = self._ver_cell
            self.switches.append(switch)
            for mid in ids:
                self.machines[mid].switch_id = sw_id

    def health_version(self) -> int:
        """Cluster-wide change counter: bumps on *any* component write.

        Equal values across two instants prove no machine or switch
        state changed in between, which lets periodic sweeps skip
        re-scanning a provably-unchanged fleet.
        """
        return self._ver_cell[0]

    def health_index(self):
        """The struct-of-arrays health mirror, built on first use.

        Lazy because small clusters (unit tests, single-job scenarios)
        never take the vectorized path and should not pay the arrays
        or the dirty-sink bookkeeping on every component write.
        """
        index = self._health_index
        if index is None:
            from repro.cluster.health_index import HealthIndex
            index = self._health_index = HealthIndex(self)
        return index

    def switch_id_array(self):
        """machine id -> leaf switch id as a numpy intp array.

        Cabling is static after construction, so the array is built
        once and shared by every consumer that groups machines by
        switch at fleet scale (vectorized placement, the health
        index).
        """
        arr = self._switch_ids
        if arr is None:
            import numpy as np
            arr = self._switch_ids = np.fromiter(
                (m.switch_id for m in self.machines), dtype=np.intp,
                count=len(self.machines))
        return arr

    # ------------------------------------------------------------------
    def machine(self, machine_id: int) -> Machine:
        if not 0 <= machine_id < len(self.machines):
            raise ValueError(f"machine {machine_id} out of range")
        return self.machines[machine_id]

    def switch_of(self, machine_id: int) -> Switch:
        sw_id = self.machine(machine_id).switch_id
        assert sw_id is not None
        return self.switches[sw_id]

    def machines_on_switch(self, switch_id: int) -> List[Machine]:
        return [self.machines[i] for i in self.switches[switch_id].machine_ids]

    def switches_of(self, machine_ids: Iterable[int]) -> List[int]:
        """Distinct leaf-switch ids the machine set hangs off, sorted."""
        return sorted({self.machine(mid).switch_id for mid in machine_ids})

    def switch_span(self, machine_ids: Iterable[int]) -> int:
        """How many leaf switches the machine set touches — the blast-
        radius / traffic-locality score the placement policies optimize
        (:mod:`repro.cluster.placement`)."""
        return len(self.switches_of(machine_ids))

    def network_reachable(self, machine_id: int) -> bool:
        """Machine has a working network path (NICs up and switch up)."""
        machine = self.machine(machine_id)
        return (self.switch_of(machine_id).up
                and any(n.up for n in machine.nics))

    def machines_in_state(self, state: MachineState) -> List[Machine]:
        return [m for m in self.machines if m.state == state]

    def unhealthy_machines(self,
                           among: Optional[Iterable[int]] = None
                           ) -> List[int]:
        ids = range(len(self.machines)) if among is None else among
        return [i for i in ids
                if not self.machines[i].healthy()
                or not self.network_reachable(i)]

    def health_snapshot(self) -> Dict[int, bool]:
        """machine_id → fully-healthy flag, for dashboards/tests."""
        return {m.id: m.healthy() and self.network_reachable(m.id)
                for m in self.machines}

    @property
    def total_gpus(self) -> int:
        return self.spec.total_gpus

    def __len__(self) -> int:
        return len(self.machines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Cluster {len(self.machines)} machines, "
                f"{len(self.switches)} switches>")
