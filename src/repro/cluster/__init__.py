"""Simulated GPU cluster substrate.

The paper's substrate is a production fleet of 8/16-GPU machines joined
by RDMA networking.  This package models the pieces of that fleet that
ByteRobust's detection and recovery logic actually observes:

* :mod:`repro.cluster.components` — machines, GPUs, NICs and their
  health state (DCGM status, Xid events, temperature, link state, ...);
* :mod:`repro.cluster.topology` — a two-level switch fabric so switch
  failures take out machine groups;
* :mod:`repro.cluster.faults` — the full Table 1 fault taxonomy, fault
  descriptors, and the injector that mutates component state and
  schedules auto-recovery of transient faults;
* :mod:`repro.cluster.pool` — the machine pool: active / warm-standby /
  free machines, provisioning delays, eviction and blacklisting;
* :mod:`repro.cluster.placement` — topology-aware placement policies
  (pack / spread / any-free) scoring allocations by leaf-switch span;
* :mod:`repro.cluster.scheduler` — fleet-level admission, priority
  dispatch and EASY backfill over the pool.
"""

from repro.cluster.components import (
    Gpu,
    HostState,
    Machine,
    MachineState,
    Nic,
)
from repro.cluster.topology import Cluster, ClusterSpec, Switch
from repro.cluster.faults import (
    Fault,
    FaultInjector,
    FaultSymptom,
    RootCause,
)
from repro.cluster.healthcheck import (
    CheckItem,
    SelfCheckResult,
    SelfCheckRunner,
    default_check_battery,
)
from repro.cluster.placement import (
    AnyFreePolicy,
    PackPolicy,
    PlacementError,
    PlacementPolicy,
    SpreadPolicy,
    make_placement_policy,
    placement_policy_names,
    switch_span,
)
from repro.cluster.pool import MachinePool, ProvisioningTimes
from repro.cluster.scheduler import (
    AdmissionError,
    FleetScheduler,
    JobRequest,
)

__all__ = [
    "AdmissionError",
    "AnyFreePolicy",
    "CheckItem",
    "Cluster",
    "ClusterSpec",
    "Fault",
    "FaultInjector",
    "FaultSymptom",
    "FleetScheduler",
    "Gpu",
    "HostState",
    "JobRequest",
    "Machine",
    "MachinePool",
    "MachineState",
    "Nic",
    "PackPolicy",
    "PlacementError",
    "PlacementPolicy",
    "ProvisioningTimes",
    "RootCause",
    "SelfCheckResult",
    "SelfCheckRunner",
    "SpreadPolicy",
    "Switch",
    "default_check_battery",
    "make_placement_policy",
    "placement_policy_names",
    "switch_span",
]
