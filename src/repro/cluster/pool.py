"""Machine pool: active / warm-standby / free machines + provisioning.

The pool owns the scheduling-time model that Table 7 and Fig. 12 are
built on.  All restart flavours (full requeue, reschedule-evicted-only,
warm standby, oracle) are expressed in terms of the same primitive
delays so the comparisons stay internally consistent:

* ``requeue`` pays metadata clearing + quota reallocation + full pod
  rebuilds, and grows with cluster scale;
* ``reschedule`` pays pod rebuilds for the evicted machines only;
* ``warm standby`` pays just the wake-from-low-power delay because pod
  environments were built (and self-checked) ahead of time;
* ``oracle`` is warm standby with an infinite pool.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Set

from repro.cluster.components import MachineState
from repro.cluster.placement import AnyFreePolicy, PlacementPolicy
from repro.cluster.topology import Cluster
from repro.sim import Simulator


@dataclass(frozen=True)
class ProvisioningTimes:
    """Calibrated scheduling/provisioning delays (seconds).

    Calibration anchors (paper Table 7 / Fig. 12): full requeue of a
    128-machine job ≈ 454 s growing ≈ 105 s per doubling of scale; hot
    update ≈ 46 s at 128 machines growing ≈ 6 s per doubling; warm
    standby wake is scale-independent at ~30 s.
    """

    #: Full-requeue base cost at the reference scale.
    requeue_base_s: float = 454.0
    #: Extra requeue cost per doubling of machine count.
    requeue_per_doubling_s: float = 105.0
    #: Reference scale for the two constants above.
    reference_machines: int = 128
    #: Building a pod environment from scratch (image + libs).
    pod_build_s: float = 210.0
    #: Machine self-check before delivery (standby pre-validation).
    self_check_s: float = 90.0
    #: Scheduler round trip to allocate replacement machines.
    schedule_alloc_s: float = 45.0
    #: Per-machine incremental allocation cost.
    schedule_per_machine_s: float = 1.5
    #: Waking a warm standby out of low-power sleep.
    standby_wake_s: float = 45.0
    #: Stopping processes + applying a code patch in place.
    hot_update_base_s: float = 42.0
    #: Hot-update growth per doubling (barrier sync across more pods).
    hot_update_per_doubling_s: float = 6.5
    #: Restart barrier: relaunching training processes after any restart.
    process_relaunch_s: float = 15.0
    #: Repairing an evicted machine (offline triage) before reuse.
    repair_s: float = 4 * 3600.0

    def _doublings(self, num_machines: int) -> float:
        return max(0.0, math.log2(max(1, num_machines)
                                  / self.reference_machines))

    def requeue_time(self, num_machines: int) -> float:
        """Kill + requeue the whole job, reallocating every machine."""
        return (self.requeue_base_s
                + self.requeue_per_doubling_s * self._doublings(num_machines)
                + self.process_relaunch_s)

    def reschedule_time(self, evicted: int) -> float:
        """Allocate + rebuild pods for evicted machines only."""
        if evicted <= 0:
            return self.process_relaunch_s
        return (self.schedule_alloc_s
                + self.schedule_per_machine_s * evicted
                + self.pod_build_s + self.self_check_s
                + self.process_relaunch_s)

    def standby_wake_time(self, evicted: int) -> float:
        """Wake pre-validated standbys (pod env already built)."""
        if evicted <= 0:
            return self.process_relaunch_s
        return self.standby_wake_s + self.process_relaunch_s

    def hot_update_time(self, num_machines: int) -> float:
        """In-place code update: no machine change, no pod rebuild."""
        return (self.hot_update_base_s
                + self.hot_update_per_doubling_s
                * self._doublings(num_machines))


class InsufficientMachines(RuntimeError):
    """Raised when the pool cannot satisfy an allocation."""


class MachinePool:
    """Tracks machine lifecycle and provisions warm standbys.

    The pool is deliberately mechanism-only: *when* to evict and *how
    many* standbys to keep are policy decisions made by the controller
    (:mod:`repro.controller.standby`); the pool executes them.
    """

    def __init__(self, sim: Simulator, cluster: Cluster,
                 times: Optional[ProvisioningTimes] = None,
                 self_check: Optional["SelfCheckRunner"] = None,
                 placement: Optional[PlacementPolicy] = None):
        from repro.cluster.healthcheck import SelfCheckRunner
        self.sim = sim
        self.cluster = cluster
        self.times = times or ProvisioningTimes()
        #: Which free machines an allocation gets (see
        #: :mod:`repro.cluster.placement`).  The default reproduces the
        #: historical lowest-ids-first choice byte for byte.
        self.placement = placement or AnyFreePolicy()
        self.self_check = self_check or SelfCheckRunner()
        self.self_check_results: List["SelfCheckResult"] = []
        self.active: Set[int] = set()
        self.standby: Set[int] = set()
        self.provisioning: Set[int] = set()
        self.evicted: Set[int] = set()
        self.blacklist: Set[int] = set()
        self.free: Set[int] = {m.id for m in cluster.machines}
        #: Called with the machine id whenever a standby becomes ready.
        self.on_standby_ready: Optional[Callable[[int], None]] = None
        #: Called with the machine id when offline repair completes —
        #: the platform wires this to ``FaultInjector.clear_machine`` so
        #: repaired machines do not leave their faults active forever
        #: (quarter-long fleets otherwise accumulate tens of thousands
        #: of stale entries that every job (re)start then scans).
        self.on_repair: Optional[Callable[[int], None]] = None
        #: Total machine-seconds spent idling in the standby pool.
        self.standby_idle_machine_seconds = 0.0
        self._standby_since: dict = {}

    # ------------------------------------------------------------------
    # initial allocation
    # ------------------------------------------------------------------
    def allocate_active(self, count: int) -> List[int]:
        """Take ``count`` machines for the job (instant; job start cost
        is accounted separately by the recovery model).

        *Which* machines are taken is the placement policy's call:
        every allocation — scheduler dispatch and standby provisioning
        alike — routes through :meth:`_take_free`, which delegates the
        choice to :attr:`placement`.
        """
        chosen = self._take_free(count)
        for mid in chosen:
            self._set_state(mid, MachineState.ACTIVE)
            self.active.add(mid)
        return chosen

    def _take_free(self, count: int) -> List[int]:
        # set difference in C, then one sort: at fleet scale this runs
        # on every allocation over ~10k free machines, so the Python-
        # level filter genexp it replaced was a per-dispatch hotspot
        usable = sorted(self.free - self.blacklist)
        if len(usable) < count:
            raise InsufficientMachines(
                f"need {count} machines, only {len(usable)} free")
        chosen = self.placement.select(self.cluster, usable, count)
        # validate in O(chosen), not by materializing usable as a set
        if (len(set(chosen)) != count
                or not all(m in self.free and m not in self.blacklist
                           for m in chosen)):
            from repro.cluster.placement import PlacementError
            raise PlacementError(
                f"placement policy {self.placement.name!r} returned an "
                f"invalid selection ({len(chosen)} of {count} asked)")
        self.free.difference_update(chosen)
        return chosen

    def _set_state(self, mid: int, state: MachineState) -> None:
        self.cluster.machine(mid).state = state

    # ------------------------------------------------------------------
    # warm standby provisioning
    # ------------------------------------------------------------------
    def provision_standbys(self, count: int) -> List[int]:
        """Start building pod environments on ``count`` free machines.

        Each machine becomes STANDBY after pod build + self-check; the
        self-check rejects machines that are currently unhealthy and
        sends them to repair instead (pre-validation, Sec. 6.2).
        """
        chosen = self._take_free(count)
        delay = self.times.pod_build_s + self.times.self_check_s
        for mid in chosen:
            self._set_state(mid, MachineState.PROVISIONING)
            self.provisioning.add(mid)
            self.sim.schedule(delay, lambda mid=mid: self._finish_provision(mid))
        return chosen

    def _finish_provision(self, mid: int) -> None:
        if mid not in self.provisioning:
            return  # was cancelled
        self.provisioning.discard(mid)
        machine = self.cluster.machine(mid)
        result = self.self_check.run(machine)
        self.self_check_results.append(result)
        if result.passed:
            self._set_state(mid, MachineState.STANDBY)
            self.standby.add(mid)
            self._standby_since[mid] = self.sim.now
            if self.on_standby_ready is not None:
                self.on_standby_ready(mid)
        else:
            self._send_to_repair(mid)

    def take_standbys(self, count: int) -> List[int]:
        """Activate up to ``count`` warm standbys (may return fewer)."""
        chosen = sorted(self.standby)[:count]
        for mid in chosen:
            self.standby.discard(mid)
            idle = self.sim.now - self._standby_since.pop(mid, self.sim.now)
            self.standby_idle_machine_seconds += idle
            self._set_state(mid, MachineState.ACTIVE)
            self.active.add(mid)
        return chosen

    def release_standbys(self, count: int) -> List[int]:
        """Return up to ``count`` warm standbys to FREE (elastic
        shrink).

        The machines did nothing wrong — the resizer simply wants the
        capacity back — so there is no repair detour; the built pod
        environment is discarded.  Highest ids are released first so
        the lowest-id standbys (the ones :meth:`take_standbys`
        activates first) stay warm, keeping shrink and activation from
        churning the same machines.  In-flight provisioning is never
        cancelled: those machines finish building and a later shrink
        tick reclaims them if still surplus.
        """
        chosen = sorted(self.standby, reverse=True)[:max(0, count)]
        for mid in chosen:
            self.standby.discard(mid)
            idle = self.sim.now - self._standby_since.pop(mid, self.sim.now)
            self.standby_idle_machine_seconds += idle
            self._set_state(mid, MachineState.FREE)
            self.free.add(mid)
        return sorted(chosen)

    @property
    def standby_count(self) -> int:
        return len(self.standby)

    @property
    def standby_supply(self) -> int:
        """Standbys ready or being built — what resizing targets."""
        return len(self.standby) + len(self.provisioning)

    def release(self, machine_ids: List[int]) -> None:
        """Return healthy ACTIVE machines to FREE (job completed).

        Unlike :meth:`evict` there is no repair detour: the machines
        did nothing wrong — the job holding them simply finished, so
        they are immediately reusable by the scheduler.
        """
        for mid in machine_ids:
            if mid not in self.active:
                raise ValueError(f"machine {mid} is not active")
            self.active.discard(mid)
            self._set_state(mid, MachineState.FREE)
            self.free.add(mid)

    # ------------------------------------------------------------------
    # eviction & repair
    # ------------------------------------------------------------------
    def evict(self, machine_ids: List[int], blacklist: bool = True) -> None:
        """Remove machines from the job; optionally block their IPs."""
        for mid in machine_ids:
            if mid in self.active:
                self.active.discard(mid)
            elif mid in self.standby:
                self.standby.discard(mid)
                self._standby_since.pop(mid, None)
            self.evicted.add(mid)
            if blacklist:
                self.blacklist.add(mid)
            self._set_state(mid, MachineState.BLACKLISTED if blacklist
                            else MachineState.EVICTED)
            self._send_to_repair(mid)

    def _send_to_repair(self, mid: int) -> None:
        self.sim.schedule(self.times.repair_s,
                          lambda: self._finish_repair(mid))

    def _finish_repair(self, mid: int) -> None:
        """Repair restores full health and returns the machine to FREE."""
        machine = self.cluster.machine(mid)
        if self.on_repair is not None:
            self.on_repair(mid)
        machine.reset_health()
        self.evicted.discard(mid)
        self.blacklist.discard(mid)
        if machine.state in (MachineState.EVICTED, MachineState.BLACKLISTED,
                             MachineState.PROVISIONING):
            self._set_state(mid, MachineState.FREE)
            self.free.add(mid)

    # ------------------------------------------------------------------
    def counts(self) -> dict:
        return {
            "active": len(self.active),
            "standby": len(self.standby),
            "provisioning": len(self.provisioning),
            "evicted": len(self.evicted),
            "free": len(self.free),
            "blacklisted": len(self.blacklist),
        }
