"""Fleet scheduler: job queue, admission, priority dispatch, backfill.

The paper's platform is not N jobs frozen at t=0 — 778k jobs over
three months (Table 1) arrive, run, finish, and return their machines
to a shared pool.  :class:`FleetScheduler` is the mechanism layer for
that churn:

* **admission** — a request larger than the whole cluster can never be
  placed and is rejected immediately (:class:`AdmissionError`);
* **dispatch** — queued requests start in priority order (higher
  first, FIFO within a priority) whenever enough non-blacklisted FREE
  machines exist;
* **backfill** — when the head of the queue does not fit, later
  smaller requests may start in the gap, EASY-style: the head gets a
  *reservation* at the earliest time the planned completions of
  running jobs free enough machines, and a backfill candidate starts
  only if it cannot delay that reservation (it finishes before the
  reserved start, or it fits in the capacity the head will leave
  spare).  Requests without a planned duration cannot be reasoned
  about, so when the reservation is uncomputable the scheduler falls
  back to aggressive (reservation-less) backfill;
* **retry** — a dispatch that finds no capacity re-arms itself, so
  machines freed asynchronously (job completion, repair finishing) are
  picked up without the platform polling forever while the queue is
  empty.

The scheduler owns *when* a job starts; *which* machines it gets is
delegated per-allocation to the pool's placement policy
(:mod:`repro.cluster.placement`), so dispatch routes through
``pool.allocate_active()`` and a pack/spread/any-free choice applies
uniformly to queued starts, backfills and retries.  What a "job" is
stays the owner's business — the platform hands in a ``start``
callback and calls :meth:`complete` when a job ends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.pool import MachinePool
from repro.sim import Simulator


class AdmissionError(ValueError):
    """The request can never be satisfied by this cluster."""


@dataclass
class JobRequest:
    """One queued ask: ``num_machines`` for ``name`` at ``priority``."""

    name: str
    num_machines: int
    priority: int = 0
    submitted_at: float = 0.0
    #: Planned runtime, when the owner knows it (drives EASY
    #: backfill reservations); None = open-ended.
    duration_s: Optional[float] = None
    #: Monotonic tiebreak inside one priority class (FIFO).
    seq: int = 0
    started_at: Optional[float] = None

    @property
    def planned_end(self) -> Optional[float]:
        if self.started_at is None or self.duration_s is None:
            return None
        return self.started_at + self.duration_s

    @property
    def wait_seconds(self) -> Optional[float]:
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at


class FleetScheduler:
    """Priority/backfill dispatch of job requests over a MachinePool."""

    def __init__(self, sim: Simulator, pool: MachinePool,
                 start: Callable[[JobRequest, List[int]], None],
                 backfill: bool = True,
                 retry_interval_s: float = 60.0):
        self.sim = sim
        self.pool = pool
        self.start = start
        self.backfill = backfill
        self.retry_interval_s = retry_interval_s
        self.queue: List[JobRequest] = []
        self.running: Dict[str, JobRequest] = {}
        self.finished: List[JobRequest] = []
        self._seq = 0
        self._retry_armed = False
        #: dispatch bookkeeping for fleet reports
        self.stats = {"submitted": 0, "started": 0, "completed": 0,
                      "backfilled": 0, "rejected": 0}

    # ------------------------------------------------------------------
    def check_admission(self, name: str, num_machines: int) -> None:
        """Reject (and count) requests this cluster can never place."""
        if num_machines < 1:
            self.stats["rejected"] += 1
            raise AdmissionError(f"job {name!r} asks for {num_machines} "
                                 f"machines")
        if num_machines > len(self.pool.cluster.machines):
            self.stats["rejected"] += 1
            raise AdmissionError(
                f"job {name!r} needs {num_machines} machines, the "
                f"cluster only has {len(self.pool.cluster.machines)}")

    def enqueue(self, name: str, num_machines: int, priority: int = 0,
                duration_s: Optional[float] = None) -> JobRequest:
        """Admit and queue a request without dispatching yet.

        Batch submitters (the platform's ``start()``) enqueue a whole
        set and then run one :meth:`dispatch`, so priority order holds
        across the batch instead of first-enqueued-first-served.
        """
        self.check_admission(name, num_machines)
        request = JobRequest(name=name, num_machines=num_machines,
                             priority=priority, duration_s=duration_s,
                             submitted_at=self.sim.now, seq=self._seq)
        self._seq += 1
        self.stats["submitted"] += 1
        self.queue.append(request)
        return request

    def submit(self, name: str, num_machines: int, priority: int = 0,
               duration_s: Optional[float] = None) -> JobRequest:
        """Queue a request; dispatch immediately if capacity allows."""
        request = self.enqueue(name, num_machines, priority=priority,
                               duration_s=duration_s)
        self.dispatch()
        return request

    def complete(self, name: str) -> None:
        """A running job finished: returning its machines to the pool
        is the owner's job; here we release the scheduling slot and
        re-dispatch the queue."""
        request = self.running.pop(name, None)
        if request is None:
            raise KeyError(f"no running job {name!r}")
        self.stats["completed"] += 1
        self.finished.append(request)
        self.dispatch()

    # ------------------------------------------------------------------
    def available_machines(self) -> int:
        return len(self.pool.free - self.pool.blacklist)

    def _head_reservation(self, head_need: int
                          ) -> Tuple[Optional[float], int]:
        """EASY reservation for a blocked head: ``(start_time, spare)``.

        Walks the planned completions of running jobs until the
        accumulated releases (plus what is free now) cover the head;
        ``spare`` is the capacity left over at that instant, which
        long-running backfills may occupy without delaying the head.
        ``(None, 0)`` means the reservation is uncomputable from
        planned durations (open-ended jobs, or releases that only
        repairs will provide).
        """
        acc = self.available_machines()
        if acc >= head_need:
            # enough capacity right now: the "reservation" is
            # immediate (dispatch only asks for blocked heads, but a
            # standalone query must not report this as uncomputable)
            return self.sim.now, acc - head_need
        releases = sorted(
            (r.planned_end, r.num_machines)
            for r in self.running.values() if r.planned_end is not None)
        for t, n in releases:
            acc += n
            if acc >= head_need:
                return t, acc - head_need
        return None, 0

    def dispatch(self) -> int:
        """Start every queued request that may start right now.

        Requests are considered in (-priority, submit order).  The
        first request that does not fit becomes the *head*: it gets a
        reservation (see :meth:`_head_reservation`), and later
        requests may start past it only if they cannot delay it —
        they finish before the reserved start, or they fit in the
        head's spare capacity.  With an uncomputable reservation the
        backfill is aggressive (any fitting request starts), and with
        ``backfill=False`` nothing passes a blocked head at all.
        Returns the number of jobs started.
        """
        started = 0
        reservation: Optional[Tuple[Optional[float], int]] = None
        for request in sorted(self.queue,
                              key=lambda r: (-r.priority, r.seq)):
            if self.available_machines() < request.num_machines:
                if not self.backfill:
                    break
                if reservation is None:
                    reservation = self._head_reservation(
                        request.num_machines)
                continue
            if reservation is not None:
                reserved_at, spare = reservation
                if reserved_at is not None:
                    ends_in_time = (
                        request.duration_s is not None
                        and self.sim.now + request.duration_s
                        <= reserved_at)
                    if ends_in_time:
                        pass      # machines come back before the head starts
                    elif request.num_machines <= spare:
                        # runs past the reserved start, but in capacity
                        # the head leaves unused
                        reservation = (reserved_at,
                                       spare - request.num_machines)
                    else:
                        continue  # would delay the head: stay queued
                self.stats["backfilled"] += 1
            self.queue.remove(request)
            machines = self.pool.allocate_active(request.num_machines)
            request.started_at = self.sim.now
            self.running[request.name] = request
            self.stats["started"] += 1
            started += 1
            self.start(request, machines)
        if self.queue and not self._retry_armed:
            # capacity frees asynchronously (repair completions) —
            # re-arm a single retry timer while anything is waiting
            self._retry_armed = True
            self.sim.schedule(self.retry_interval_s, self._retry)
        return started

    def _retry(self) -> None:
        self._retry_armed = False
        if self.queue:
            self.dispatch()

    # ------------------------------------------------------------------
    def queued_names(self) -> List[str]:
        return [r.name for r in sorted(self.queue,
                                       key=lambda r: (-r.priority, r.seq))]
