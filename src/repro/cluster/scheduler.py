"""Fleet scheduler: job queue, admission, priority dispatch, backfill.

The paper's platform is not N jobs frozen at t=0 — 778k jobs over
three months (Table 1) arrive, run, finish, and return their machines
to a shared pool.  :class:`FleetScheduler` is the mechanism layer for
that churn:

* **admission** — a request larger than the whole cluster can never be
  placed and is rejected immediately (:class:`AdmissionError`);
* **dispatch** — queued requests start in priority order (higher
  first, FIFO within a priority) whenever enough non-blacklisted FREE
  machines exist;
* **backfill** — when the head of the queue does not fit, later
  smaller requests may start in the gap, EASY-style: the head gets a
  *reservation* at the earliest time the planned completions of
  running jobs free enough machines, and a backfill candidate starts
  only if it cannot delay that reservation (it finishes before the
  reserved start, or it fits in the capacity the head will leave
  spare).  Requests without a planned duration cannot be reasoned
  about, so when the reservation is uncomputable the scheduler falls
  back to aggressive (reservation-less) backfill;
* **retry** — a dispatch that finds no capacity re-arms itself, so
  machines freed asynchronously (job completion, repair finishing) are
  picked up without the platform polling forever while the queue is
  empty;
* **preemption** — when a higher-priority request stays blocked, the
  scheduler plans victim releases from strictly-lower-priority running
  jobs (lowest priority first, newest first within a class) and asks
  the owner to preempt them; the owner carries the preemption out at
  a checkpoint boundary and calls :meth:`preempted` when the machines
  are back, which re-queues the victim to resume from its checkpoint;
* **elastic resize** — requests that declare ``(min_machines,
  max_machines)`` may be shrunk toward their floor to admit a blocked
  higher-priority head (cheaper than full preemption, tried first)
  and grown toward their ceiling when capacity sits free with an
  empty queue; both happen through the owner's ``resize`` callback at
  checkpoint boundaries, acknowledged via :meth:`resized`.

The scheduler owns *when* a job starts; *which* machines it gets is
delegated per-allocation to the pool's placement policy
(:mod:`repro.cluster.placement`), so dispatch routes through
``pool.allocate_active()`` and a pack/spread/any-free choice applies
uniformly to queued starts, backfills and retries.  What a "job" is
stays the owner's business — the platform hands in a ``start``
callback and calls :meth:`complete` when a job ends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.pool import MachinePool
from repro.sim import Simulator


class AdmissionError(ValueError):
    """The request can never be satisfied by this cluster."""


@dataclass
class JobRequest:
    """One queued ask: ``num_machines`` for ``name`` at ``priority``."""

    name: str
    num_machines: int
    priority: int = 0
    submitted_at: float = 0.0
    #: Planned runtime, when the owner knows it (drives EASY
    #: backfill reservations); None = open-ended.
    duration_s: Optional[float] = None
    #: Monotonic tiebreak inside one priority class (FIFO).
    seq: int = 0
    started_at: Optional[float] = None
    #: Elastic size bounds (None/None = fixed size).  A job may be
    #: shrunk to ``min_machines`` to admit higher-priority work and
    #: grown to ``max_machines`` when capacity sits free.
    min_machines: Optional[int] = None
    max_machines: Optional[int] = None
    #: False exempts the job from preemption (static/add_job jobs).
    preemptible: bool = True
    #: Times this request was preempted; ``was_preempted`` flags a
    #: queued request whose next start is a resume.
    preemptions: int = 0
    was_preempted: bool = False

    @property
    def elastic(self) -> bool:
        return (self.min_machines is not None
                or self.max_machines is not None)

    @property
    def size_floor(self) -> int:
        return (self.min_machines if self.min_machines is not None
                else self.num_machines)

    @property
    def size_ceiling(self) -> int:
        return (self.max_machines if self.max_machines is not None
                else self.num_machines)

    @property
    def planned_end(self) -> Optional[float]:
        if self.started_at is None or self.duration_s is None:
            return None
        return self.started_at + self.duration_s

    @property
    def wait_seconds(self) -> Optional[float]:
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at


class FleetScheduler:
    """Priority/backfill dispatch of job requests over a MachinePool."""

    def __init__(self, sim: Simulator, pool: MachinePool,
                 start: Callable[[JobRequest, List[int]], None],
                 backfill: bool = True,
                 retry_interval_s: float = 60.0,
                 preemption: str = "none",
                 preempt: Optional[Callable[[JobRequest], None]] = None,
                 resize: Optional[
                     Callable[[JobRequest, int], None]] = None):
        if preemption not in ("none", "kill", "checkpoint"):
            raise ValueError(f"unknown preemption policy {preemption!r}")
        self.sim = sim
        self.pool = pool
        self.start = start
        self.backfill = backfill
        self.retry_interval_s = retry_interval_s
        #: "none" | "kill" | "checkpoint" — *whether* victims are
        #: preempted is decided here; *how* (immediate kill vs wait
        #: for the checkpoint boundary) is the owner's business.
        self.preemption = preemption
        #: Owner callback: begin preempting a running request.  The
        #: owner releases the machines (at its chosen boundary) and
        #: then calls :meth:`preempted`.
        self.preempt = preempt
        #: Owner callback: begin resizing a running request to a new
        #: machine count, acknowledged via :meth:`resized`.
        self.resize = resize
        self.queue: List[JobRequest] = []
        self.running: Dict[str, JobRequest] = {}
        self.finished: List[JobRequest] = []
        self._seq = 0
        self._retry_armed = False
        #: machines promised back by in-flight preemptions/shrinks,
        #: keyed by job name — keeps re-dispatch from over-preempting
        #: while a victim is still draining to its boundary
        self._pending_release: Dict[str, int] = {}
        #: names with a resize (either direction) in flight
        self._resizing: set = set()
        #: dispatch bookkeeping for fleet reports
        self.stats = {"submitted": 0, "started": 0, "completed": 0,
                      "backfilled": 0, "rejected": 0, "preempted": 0,
                      "resumed": 0, "shrunk": 0, "grown": 0}

    # ------------------------------------------------------------------
    def check_admission(self, name: str, num_machines: int) -> None:
        """Reject (and count) requests this cluster can never place."""
        if num_machines < 1:
            self.stats["rejected"] += 1
            raise AdmissionError(f"job {name!r} asks for {num_machines} "
                                 f"machines")
        if num_machines > len(self.pool.cluster.machines):
            self.stats["rejected"] += 1
            raise AdmissionError(
                f"job {name!r} needs {num_machines} machines, the "
                f"cluster only has {len(self.pool.cluster.machines)}")

    def enqueue(self, name: str, num_machines: int, priority: int = 0,
                duration_s: Optional[float] = None,
                min_machines: Optional[int] = None,
                max_machines: Optional[int] = None,
                preemptible: bool = True) -> JobRequest:
        """Admit and queue a request without dispatching yet.

        Batch submitters (the platform's ``start()``) enqueue a whole
        set and then run one :meth:`dispatch`, so priority order holds
        across the batch instead of first-enqueued-first-served.
        """
        self.check_admission(name, num_machines)
        if min_machines is not None and not (
                1 <= min_machines <= num_machines):
            self.stats["rejected"] += 1
            raise AdmissionError(
                f"job {name!r}: min_machines {min_machines} outside "
                f"[1, {num_machines}]")
        if max_machines is not None and (
                max_machines < num_machines
                or max_machines > len(self.pool.cluster.machines)):
            self.stats["rejected"] += 1
            raise AdmissionError(
                f"job {name!r}: max_machines {max_machines} outside "
                f"[{num_machines}, {len(self.pool.cluster.machines)}]")
        request = JobRequest(name=name, num_machines=num_machines,
                             priority=priority, duration_s=duration_s,
                             submitted_at=self.sim.now, seq=self._seq,
                             min_machines=min_machines,
                             max_machines=max_machines,
                             preemptible=preemptible)
        self._seq += 1
        self.stats["submitted"] += 1
        self.queue.append(request)
        return request

    def submit(self, name: str, num_machines: int, priority: int = 0,
               duration_s: Optional[float] = None,
               min_machines: Optional[int] = None,
               max_machines: Optional[int] = None,
               preemptible: bool = True) -> JobRequest:
        """Queue a request; dispatch immediately if capacity allows."""
        request = self.enqueue(name, num_machines, priority=priority,
                               duration_s=duration_s,
                               min_machines=min_machines,
                               max_machines=max_machines,
                               preemptible=preemptible)
        self.dispatch()
        return request

    def complete(self, name: str) -> None:
        """A running job finished: returning its machines to the pool
        is the owner's job; here we release the scheduling slot and
        re-dispatch the queue."""
        request = self.running.pop(name, None)
        if request is None:
            raise KeyError(f"no running job {name!r}")
        # completion beats any in-flight preemption/resize of the job
        self._pending_release.pop(name, None)
        self._resizing.discard(name)
        self.stats["completed"] += 1
        self.finished.append(request)
        self.dispatch()

    # ------------------------------------------------------------------
    # preemption / elastic acknowledgements (owner callbacks land here)
    # ------------------------------------------------------------------
    def preempted(self, name: str,
                  remaining_s: Optional[float]) -> JobRequest:
        """The owner finished preempting ``name``: its machines are
        back in the pool.  The request re-enters the queue (fresh seq:
        it resumes behind same-priority peers) with ``remaining_s`` as
        its new planned runtime, and a dispatch follows immediately —
        normally starting the blocked head the preemption was for."""
        request = self.running.pop(name, None)
        if request is None:
            raise KeyError(f"no running job {name!r}")
        self._pending_release.pop(name, None)
        self.stats["preempted"] += 1
        request.preemptions += 1
        request.was_preempted = True
        request.started_at = None
        request.duration_s = remaining_s
        request.seq = self._seq
        self._seq += 1
        self.queue.append(request)
        self.dispatch()
        return request

    def resized(self, name: str, new_size: int) -> None:
        """The owner finished resizing ``name`` to ``new_size``."""
        request = self.running.get(name)
        if request is None:
            raise KeyError(f"no running job {name!r}")
        delta = new_size - request.num_machines
        self._pending_release.pop(name, None)
        self._resizing.discard(name)
        request.num_machines = new_size
        if delta < 0:
            self.stats["shrunk"] += 1
        elif delta > 0:
            self.stats["grown"] += 1
        self.dispatch()

    def resize_aborted(self, name: str) -> None:
        """The owner could not carry out a planned resize (capacity
        vanished before the boundary): clear the in-flight marks."""
        self._pending_release.pop(name, None)
        self._resizing.discard(name)

    def note_preempting(self, name: str) -> None:
        """The owner started preempting ``name`` on its own initiative
        (spot reclaim): count the machines as promised back so
        dispatch does not plan a second preemption on top of it."""
        request = self.running.get(name)
        if request is not None:
            self._pending_release[name] = request.num_machines

    # ------------------------------------------------------------------
    def available_machines(self) -> int:
        return len(self.pool.free - self.pool.blacklist)

    def _head_reservation(self, head_need: int
                          ) -> Tuple[Optional[float], int]:
        """EASY reservation for a blocked head: ``(start_time, spare)``.

        Walks the planned completions of running jobs until the
        accumulated releases (plus what is free now) cover the head;
        ``spare`` is the capacity left over at that instant, which
        long-running backfills may occupy without delaying the head.
        ``(None, 0)`` means the reservation is uncomputable from
        planned durations (open-ended jobs, or releases that only
        repairs will provide).
        """
        acc = self.available_machines()
        if acc >= head_need:
            # enough capacity right now: the "reservation" is
            # immediate (dispatch only asks for blocked heads, but a
            # standalone query must not report this as uncomputable)
            return self.sim.now, acc - head_need
        releases = sorted(
            (r.planned_end, r.num_machines)
            for r in self.running.values() if r.planned_end is not None)
        for t, n in releases:
            acc += n
            if acc >= head_need:
                return t, acc - head_need
        return None, 0

    def dispatch(self) -> int:
        """Start every queued request that may start right now.

        Requests are considered in (-priority, submit order).  The
        first request that does not fit becomes the *head*: it gets a
        reservation (see :meth:`_head_reservation`), and later
        requests may start past it only if they cannot delay it —
        they finish before the reserved start, or they fit in the
        head's spare capacity.  With an uncomputable reservation the
        backfill is aggressive (any fitting request starts), and with
        ``backfill=False`` nothing passes a blocked head at all.
        Returns the number of jobs started.
        """
        started = 0
        reservation: Optional[Tuple[Optional[float], int]] = None
        for request in sorted(self.queue,
                              key=lambda r: (-r.priority, r.seq)):
            if self.available_machines() < request.num_machines:
                if not self.backfill or self._pending_release:
                    # machines freed by an in-flight preemption/shrink
                    # plan are earmarked for the blocked head: letting
                    # a backfill (worst case: the victim itself) grab
                    # them would undo the plan — in kill mode, as an
                    # endless preempt/restart cycle at one timestamp
                    break
                if reservation is None:
                    reservation = self._head_reservation(
                        request.num_machines)
                continue
            if reservation is not None:
                reserved_at, spare = reservation
                if reserved_at is not None:
                    ends_in_time = (
                        request.duration_s is not None
                        and self.sim.now + request.duration_s
                        <= reserved_at)
                    if ends_in_time:
                        pass      # machines come back before the head starts
                    elif request.num_machines <= spare:
                        # runs past the reserved start, but in capacity
                        # the head leaves unused
                        reservation = (reserved_at,
                                       spare - request.num_machines)
                    else:
                        continue  # would delay the head: stay queued
                self.stats["backfilled"] += 1
            self.queue.remove(request)
            machines = self.pool.allocate_active(request.num_machines)
            request.started_at = self.sim.now
            self.running[request.name] = request
            self.stats["started"] += 1
            if request.was_preempted:
                self.stats["resumed"] += 1
                request.was_preempted = False
            started += 1
            self.start(request, machines)
        if self.queue:
            self._plan_preemption()
            if not self._retry_armed:
                # capacity frees asynchronously (repair completions) —
                # re-arm a single retry timer while anything is waiting
                self._retry_armed = True
                self.sim.schedule(self.retry_interval_s, self._retry)
        elif self.resize is not None:
            self._grow_elastic()
        return started

    def _retry(self) -> None:
        self._retry_armed = False
        if self.queue:
            self.dispatch()

    # ------------------------------------------------------------------
    # preemption planning / elastic growth
    # ------------------------------------------------------------------
    def _victims(self) -> List[JobRequest]:
        """Running jobs in victim order: lowest priority first, newest
        first within a class, skipping anything already in flight."""
        return sorted(
            (r for r in self.running.values()
             if r.name not in self._pending_release
             and r.name not in self._resizing),
            key=lambda r: (r.priority, -r.seq))

    def _plan_preemption(self) -> None:
        """Free capacity for the blocked queue head by shrinking and —
        failing that — preempting strictly-lower-priority victims.

        The plan executes only when it fully covers the head's
        shortfall (in-flight returns counted); a partial plan would
        churn victims without starting anyone.  Shrinks are tried
        first: an elastic job at or below the head's priority gives
        back everything above its floor without losing any progress.
        """
        if self.preemption == "none" and self.resize is None:
            return
        head = min(self.queue, key=lambda r: (-r.priority, r.seq))
        shortfall = (head.num_machines - self.available_machines()
                     - sum(self._pending_release.values()))
        if shortfall <= 0:
            return      # in-flight returns already cover the head
        shrinks: Dict[str, Tuple[JobRequest, int]] = {}
        recoverable = 0
        if self.resize is not None:
            for victim in self._victims():
                if victim.priority > head.priority:
                    continue
                floor = victim.size_floor
                if floor < victim.num_machines:
                    shrinks[victim.name] = (victim, floor)
                    recoverable += victim.num_machines - floor
                    if recoverable >= shortfall:
                        break
        preempts: List[JobRequest] = []
        if (recoverable < shortfall and self.preemption != "none"
                and self.preempt is not None):
            for victim in self._victims():
                if (not victim.preemptible
                        or victim.priority >= head.priority):
                    continue
                planned = shrinks.pop(victim.name, None)
                # a shrink already counted everything above the floor;
                # full preemption returns the floor as well
                recoverable += (planned[1] if planned
                                else victim.num_machines)
                preempts.append(victim)
                if recoverable >= shortfall:
                    break
        if recoverable < shortfall:
            return      # even the full plan cannot start the head
        for victim, floor in shrinks.values():
            self._pending_release[victim.name] = \
                victim.num_machines - floor
            self._resizing.add(victim.name)
            self.resize(victim, floor)
        for victim in preempts:
            self._pending_release[victim.name] = victim.num_machines
            self.preempt(victim)

    def _grow_elastic(self) -> None:
        """Hand free capacity to running elastic jobs (queue empty):
        highest priority first, oldest first within a class."""
        available = self.available_machines()
        if available <= 0:
            return
        for request in sorted(self.running.values(),
                              key=lambda r: (-r.priority, r.seq)):
            if available <= 0:
                break
            if (request.name in self._resizing
                    or request.name in self._pending_release):
                continue
            target = min(request.size_ceiling,
                         request.num_machines + available)
            if target <= request.num_machines:
                continue
            available -= target - request.num_machines
            self._resizing.add(request.name)
            self.resize(request, target)

    # ------------------------------------------------------------------
    def queued_names(self) -> List[str]:
        return [r.name for r in sorted(self.queue,
                                       key=lambda r: (-r.priority, r.seq))]
