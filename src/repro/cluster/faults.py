"""Fault taxonomy (Table 1 / Table 2 / Table 3) and the fault injector.

A :class:`Fault` couples three things the rest of the system keeps
separate on purpose:

* the **symptom** — what the incident looks like from the outside
  (Table 1's rows: CUDA error, job hang, NaN value, ...);
* the **root cause** — infrastructure vs user code vs data (Table 2),
  refined by a :class:`RootCauseDetail` (Table 3's rows: NIC crash,
  switch down, GPU driver hang, ...);
* the **job effect** — how the running training job manifests it
  (crash / hang / slowdown / NaN loss / nothing).

ByteRobust never gets to see the root cause directly; it observes the
symptom through inspections, metrics, and logs, and must infer enough
to isolate the faulty machines.  The injector is therefore the keeper
of ground truth: diagnostics query it only through the narrow,
recall-limited test interfaces in :mod:`repro.diagnosis`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.topology import Cluster
    from repro.sim import Simulator


class FaultCategory(enum.Enum):
    EXPLICIT = "explicit"
    IMPLICIT = "implicit"
    MANUAL = "manual"


class FaultSymptom(enum.Enum):
    """Incident symptoms, 1:1 with Table 1."""

    CUDA_ERROR = "cuda_error"
    CPU_OVERLOAD = "cpu_overload"
    CPU_OOM = "cpu_oom"
    DISK_SPACE = "insufficient_disk_space"
    INFINIBAND_ERROR = "infiniband_error"
    FILESYSTEM_MOUNT = "filesystem_mount"
    HDFS_ERROR = "hdfs_error"
    CONTAINER_ERROR = "container_error"
    OS_KERNEL_PANIC = "os_kernel_panic"
    GPU_MEMORY_ERROR = "gpu_memory_error"
    EXTERNAL_SERVICE_ERROR = "external_service_error"
    GPU_UNAVAILABLE = "gpu_unavailable"
    DISK_FAULT = "disk_fault"
    JOB_HANG = "job_hang"
    MFU_DECLINE = "mfu_decline"
    NAN_VALUE = "nan_value"
    CODE_DATA_ADJUSTMENT = "code_data_adjustment"

    @property
    def category(self) -> FaultCategory:
        return _SYMPTOM_CATEGORY[self]


_EXPLICIT = (
    FaultSymptom.CUDA_ERROR, FaultSymptom.CPU_OVERLOAD, FaultSymptom.CPU_OOM,
    FaultSymptom.DISK_SPACE, FaultSymptom.INFINIBAND_ERROR,
    FaultSymptom.FILESYSTEM_MOUNT, FaultSymptom.HDFS_ERROR,
    FaultSymptom.CONTAINER_ERROR, FaultSymptom.OS_KERNEL_PANIC,
    FaultSymptom.GPU_MEMORY_ERROR, FaultSymptom.EXTERNAL_SERVICE_ERROR,
    FaultSymptom.GPU_UNAVAILABLE, FaultSymptom.DISK_FAULT,
)
_IMPLICIT = (FaultSymptom.JOB_HANG, FaultSymptom.MFU_DECLINE,
             FaultSymptom.NAN_VALUE)

_SYMPTOM_CATEGORY: Dict[FaultSymptom, FaultCategory] = {}
for _s in _EXPLICIT:
    _SYMPTOM_CATEGORY[_s] = FaultCategory.EXPLICIT
for _s in _IMPLICIT:
    _SYMPTOM_CATEGORY[_s] = FaultCategory.IMPLICIT
_SYMPTOM_CATEGORY[FaultSymptom.CODE_DATA_ADJUSTMENT] = FaultCategory.MANUAL


class RootCause(enum.Enum):
    """Coarse root-cause classes per Table 2."""

    INFRASTRUCTURE = "infrastructure"
    USER_CODE = "user_code"
    DATA = "data"
    NONE = "none"  # manual restarts have no fault behind them


class RootCauseDetail(enum.Enum):
    """Fine-grained root causes (Table 3 rows plus paper case studies)."""

    NIC_CRASH = "nic_crash"
    PORT_FLAPPING = "port_flapping"
    SWITCH_DOWN = "switch_down"
    UFM_FAULT = "ufm_fault"
    GPU_DRIVER_HANG = "gpu_driver_hang"
    GPU_HIGH_TEMPERATURE = "gpu_high_temperature"
    GPU_LOST = "gpu_lost"
    GPU_HBM_FAULT = "gpu_hbm_fault"
    GPU_SDC = "gpu_sdc"
    DEFECTIVE_CUDA_CORES = "defective_cuda_cores"
    PCIE_DEGRADED = "pcie_degraded"
    OS_KERNEL_FAULT = "os_kernel_fault"
    HOST_RESOURCE_EXHAUSTION = "host_resource_exhaustion"
    DISK_HW_FAULT = "disk_hw_fault"
    STORAGE_SERVICE_FAULT = "storage_service_fault"
    EXTERNAL_SERVICE_FAULT = "external_service_fault"
    USER_CODE_BUG = "user_code_bug"
    CKPT_RESHARD_MISCONFIG = "ckpt_reshard_misconfig"
    KERNEL_IMPL_BUG = "kernel_impl_bug"
    BAD_TRAINING_DATA = "bad_training_data"
    MANUAL_REQUEST = "manual_request"


class JobEffect(enum.Enum):
    """How a fault manifests on the running job."""

    CRASH = "crash"     # fail-stop with logs / exit code
    HANG = "hang"       # no progress, no logs
    SLOW = "slow"       # fail-slow: MFU declines
    NAN = "nan"         # loss / gradients go NaN
    NONE = "none"       # tolerated (e.g. recovered flap)


@dataclass
class Fault:
    """One injected fault instance (ground truth)."""

    symptom: FaultSymptom
    root_cause: RootCause
    detail: RootCauseDetail
    machine_ids: List[int] = field(default_factory=list)
    gpu_index: int = 0
    switch_id: Optional[int] = None
    effect: JobEffect = JobEffect.CRASH
    #: Transient faults clear themselves after ``auto_recover_after`` s.
    transient: bool = False
    auto_recover_after: float = 120.0
    #: For SDC-class faults: probability one replay step reproduces it.
    reproduce_prob: float = 1.0
    #: Emitted into stdout/stderr when the job crashes from this fault.
    log_signature: str = ""
    #: Process exit code on crash (0 = not applicable).
    exit_code: int = 0
    #: Code version that introduced the bug (user-code faults only).
    code_version: Optional[str] = None
    # -- bookkeeping filled by the injector --
    fault_id: int = -1
    injected_at: float = -1.0
    cleared_at: Optional[float] = None

    @property
    def active(self) -> bool:
        return self.injected_at >= 0 and self.cleared_at is None

    @property
    def is_machine_fault(self) -> bool:
        """True if some specific machine is at fault (evictable)."""
        return self.root_cause is RootCause.INFRASTRUCTURE and bool(
            self.machine_ids)

    def describe(self) -> str:
        where = (f"machines={self.machine_ids}" if self.machine_ids
                 else f"switch={self.switch_id}" if self.switch_id is not None
                 else "service-level")
        return (f"{self.symptom.value} [{self.detail.value}, "
                f"{self.root_cause.value}] {where}")


# ---------------------------------------------------------------------------
# component mutations per root-cause detail
# ---------------------------------------------------------------------------

def _apply_detail(cluster: "Cluster", fault: Fault) -> None:
    d = fault.detail
    machines = [cluster.machine(i) for i in fault.machine_ids]
    if d is RootCauseDetail.NIC_CRASH:
        for m in machines:
            m.nics[0].up = False
    elif d is RootCauseDetail.PORT_FLAPPING:
        for m in machines:
            m.nics[0].flapping = True
            m.nics[0].packet_loss_rate = 0.05
    elif d is RootCauseDetail.SWITCH_DOWN:
        assert fault.switch_id is not None
        cluster.switches[fault.switch_id].up = False
    elif d is RootCauseDetail.GPU_DRIVER_HANG:
        for m in machines:
            m.gpus[fault.gpu_index].driver_hung = True
    elif d is RootCauseDetail.GPU_HIGH_TEMPERATURE:
        for m in machines:
            gpu = m.gpus[fault.gpu_index]
            gpu.temperature_c = 92.0
            gpu.throttled = True
    elif d is RootCauseDetail.GPU_LOST:
        for m in machines:
            m.gpus[fault.gpu_index].available = False
            m.gpus[fault.gpu_index].xid_events.append(79)
    elif d is RootCauseDetail.GPU_HBM_FAULT:
        for m in machines:
            m.gpus[fault.gpu_index].hbm_faulty = True
            m.gpus[fault.gpu_index].xid_events.append(63)
            m.gpus[fault.gpu_index].pending_row_remaps += 16
    elif d in (RootCauseDetail.GPU_SDC, RootCauseDetail.DEFECTIVE_CUDA_CORES):
        for m in machines:
            gpu = m.gpus[fault.gpu_index]
            gpu.sdc_defective = True
            gpu.sdc_reproduce_prob = fault.reproduce_prob
    elif d is RootCauseDetail.PCIE_DEGRADED:
        for m in machines:
            m.gpus[fault.gpu_index].pcie_bandwidth_frac = 0.4
    elif d is RootCauseDetail.OS_KERNEL_FAULT:
        for m in machines:
            m.host.kernel_panic = True
            m.host.dmesg_xids.append(119)
    elif d is RootCauseDetail.HOST_RESOURCE_EXHAUSTION:
        for m in machines:
            if fault.symptom is FaultSymptom.CPU_OOM:
                m.host.mem_used_frac = 0.99
            elif fault.symptom is FaultSymptom.DISK_SPACE:
                m.host.disk_free_gb = 1.0
            else:
                m.host.cpu_load_frac = 0.99
    elif d is RootCauseDetail.DISK_HW_FAULT:
        for m in machines:
            m.host.disk_faulty = True
    elif d in (RootCauseDetail.STORAGE_SERVICE_FAULT,
               RootCauseDetail.EXTERNAL_SERVICE_FAULT,
               RootCauseDetail.UFM_FAULT):
        pass  # service-level: no machine component changes
    elif d in (RootCauseDetail.USER_CODE_BUG,
               RootCauseDetail.CKPT_RESHARD_MISCONFIG,
               RootCauseDetail.KERNEL_IMPL_BUG,
               RootCauseDetail.BAD_TRAINING_DATA,
               RootCauseDetail.MANUAL_REQUEST):
        pass  # software faults leave hardware state untouched
    else:  # pragma: no cover - exhaustiveness guard
        raise ValueError(f"unhandled detail {d}")
    if fault.symptom is FaultSymptom.FILESYSTEM_MOUNT:
        for m in machines:
            m.host.fs_mounted = False
    if fault.symptom is FaultSymptom.CONTAINER_ERROR:
        for m in machines:
            m.host.container_healthy = False


def _clear_detail(cluster: "Cluster", fault: Fault) -> None:
    """Undo the component mutation (transient recovery or repair)."""
    if fault.detail is RootCauseDetail.SWITCH_DOWN:
        assert fault.switch_id is not None
        cluster.switches[fault.switch_id].up = True
        return
    for mid in fault.machine_ids:
        cluster.machine(mid).reset_health()


class FaultInjector:
    """Applies faults to the cluster and tracks ground truth.

    Listeners (the training job, the monitor's event feed) are notified
    on injection and clearance.  Transient faults self-clear after their
    recovery delay, mirroring NIC flaps and switch reboots that
    ByteRobust deliberately tolerates (Sec. 4.1).
    """

    def __init__(self, sim: "Simulator", cluster: "Cluster"):
        self._sim = sim
        self._cluster = cluster
        self._ids = itertools.count()
        self.active_faults: Dict[int, Fault] = {}
        self.history: List[Fault] = []
        self._listeners: List[Callable[[str, Fault], None]] = []

    def add_listener(self, fn: Callable[[str, Fault], None]) -> None:
        """``fn(event, fault)`` with event in {"inject", "clear"}."""
        self._listeners.append(fn)

    # ------------------------------------------------------------------
    def inject(self, fault: Fault) -> Fault:
        fault.fault_id = next(self._ids)
        fault.injected_at = self._sim.now
        _apply_detail(self._cluster, fault)
        for mid in fault.machine_ids:
            self._cluster.machine(mid).active_fault_ids.append(fault.fault_id)
        self.active_faults[fault.fault_id] = fault
        self.history.append(fault)
        self._notify("inject", fault)
        if fault.transient:
            self._sim.schedule(fault.auto_recover_after,
                               lambda: self.clear(fault))
        return fault

    def clear(self, fault: Fault) -> None:
        if fault.cleared_at is not None:
            return
        fault.cleared_at = self._sim.now
        _clear_detail(self._cluster, fault)
        for mid in fault.machine_ids:
            ids = self._cluster.machine(mid).active_fault_ids
            if fault.fault_id in ids:
                ids.remove(fault.fault_id)
        self.active_faults.pop(fault.fault_id, None)
        self._notify("clear", fault)

    def clear_machine(self, machine_id: int) -> None:
        """Clear every active fault touching a machine (repair)."""
        for fault in list(self.active_faults.values()):
            if machine_id in fault.machine_ids:
                self.clear(fault)

    def _notify(self, event: str, fault: Fault) -> None:
        for fn in list(self._listeners):
            fn(event, fault)

    # ------------------------------------------------------------------
    # ground-truth queries (used by diagnosis *models*, never directly
    # by control-plane policy)
    # ------------------------------------------------------------------
    def faulty_machines(self) -> List[int]:
        out = set()
        for fault in self.active_faults.values():
            if fault.root_cause is RootCause.INFRASTRUCTURE:
                out.update(fault.machine_ids)
        return sorted(out)

    def machine_faults(self, machine_id: int) -> List[Fault]:
        return [f for f in self.active_faults.values()
                if machine_id in f.machine_ids]

    def active_by_symptom(self, symptom: FaultSymptom) -> List[Fault]:
        return [f for f in self.active_faults.values()
                if f.symptom is symptom]

    def has_active_user_code_fault(self) -> bool:
        return any(f.root_cause is RootCause.USER_CODE
                   for f in self.active_faults.values())


# ---------------------------------------------------------------------------
# per-machine fault arrivals as batched tick work
# ---------------------------------------------------------------------------

class MachineHazardProcess:
    """Per-machine Bernoulli fault arrivals, sampled once per tick.

    The fleet-scale substrate for hardware fault injection: instead of
    one exponential heap event per arrival (fine for a handful of jobs,
    hopeless for drawing per-machine arrivals across 12.5k machines),
    every machine is a hazard with mean time between faults ``mtbf_s``,
    discretized to the tick as ``p = 1 - exp(-tick_s / mtbf_s)``.  Each
    tick draws one uniform per machine and fires ``on_hit(machine_id)``
    for every hit, in machine-id order — so fault arrivals ride the
    engine's coalesced tick path and the event heap stays reserved for
    control-plane events.

    Two execution modes, byte-identical by construction: the scalar
    reference draws ``rng.random()`` per machine in a loop; the
    vectorized path draws ``rng.random(n)`` in one ``Generator`` call.
    numpy's PCG64 produces bit-identical streams either way, so the hit
    schedule — and everything downstream of it — cannot depend on the
    mode (the equivalence suite pins this).
    """

    def __init__(self, sim: "Simulator", rng, machine_ids: List[int],
                 mtbf_s: float, tick_s: float,
                 on_hit: Callable[[int], None]):
        import math

        if mtbf_s <= 0 or tick_s <= 0:
            raise ValueError("mtbf_s and tick_s must be positive")
        self._sim = sim
        self._rng = rng
        self._ids = list(machine_ids)
        self._ids_arr = None           # built lazily, numpy intp array
        self.tick_s = tick_s
        self.mtbf_s = mtbf_s
        #: per-tick hit probability from the exponential hazard
        self.p_hit = -math.expm1(-tick_s / mtbf_s)
        self._on_hit = on_hit
        self._task = None
        #: total arrivals fired (observability / reports)
        self.hits = 0

    def start(self) -> None:
        if self._task is None:
            self._task = self._sim.every_tick(self.tick_s, self._tick,
                                              first_delay=self.tick_s)

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        from repro.cluster.health_index import use_vectorized

        ids = self._ids
        if not ids:
            return
        if use_vectorized(len(ids)):
            import numpy as np

            if self._ids_arr is None or len(self._ids_arr) != len(ids):
                self._ids_arr = np.fromiter(ids, dtype=np.intp,
                                            count=len(ids))
            draws = self._rng.random(len(ids))
            hit_ids = self._ids_arr[draws < self.p_hit].tolist()
        else:
            p = self.p_hit
            rng = self._rng
            hit_ids = [mid for mid in ids if rng.random() < p]
        for mid in hit_ids:
            self.hits += 1
            self._on_hit(mid)
