"""Machine self-checks: the pre-delivery validation of standby machines.

The warm-standby design (Sec. 6.2) only works if delivered machines are
actually healthy — a degraded replacement re-introduces the fault it
was meant to cure (the paper's "uncertainty of failover").  Standby
provisioning therefore runs a battery of self-checks before a machine
may enter the pool: GPU presence and DCGM status, HBM row-remap
pressure, PCIe bandwidth, NIC link state and loopback, disk and
filesystem health, and container runtime sanity.

Each item reports pass/fail plus a duration; the battery short-circuits
on the first failure (no point bandwidth-testing a machine whose GPU is
missing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.cluster.components import Machine


@dataclass(frozen=True)
class CheckItem:
    """One self-check: a predicate over machine state plus a cost."""

    name: str
    duration_s: float
    passes: Callable[[Machine], bool]


def default_check_battery() -> List[CheckItem]:
    """The standard pre-delivery battery, cheapest checks first."""
    return [
        CheckItem("container_runtime", 2.0,
                  lambda m: m.host.container_healthy),
        CheckItem("filesystem_mounts", 3.0,
                  lambda m: m.host.fs_mounted
                  and not m.host.disk_faulty
                  and m.host.disk_free_gb > m.host.DISK_MIN_FREE_GB),
        CheckItem("kernel_health", 2.0,
                  lambda m: not m.host.kernel_panic),
        CheckItem("gpu_presence", 5.0,
                  lambda m: all(g.available for g in m.gpus)),
        CheckItem("dcgm_status", 8.0,
                  lambda m: all(g.dcgm_healthy and not g.driver_hung
                                for g in m.gpus)),
        CheckItem("hbm_row_remaps", 10.0,
                  lambda m: all(not g.hbm_faulty
                                and g.pending_row_remaps < 8
                                for g in m.gpus)),
        CheckItem("gpu_thermals", 5.0,
                  lambda m: all(not g.overheating for g in m.gpus)),
        CheckItem("pcie_bandwidth", 25.0,
                  lambda m: all(g.pcie_bandwidth_frac >= 0.8
                                for g in m.gpus)),
        CheckItem("nic_link_state", 10.0,
                  lambda m: all(n.up and not n.flapping
                                for n in m.nics)),
        CheckItem("nic_loopback", 20.0,
                  lambda m: all(n.packet_loss_rate
                                < n.FLAP_LOSS_THRESHOLD
                                for n in m.nics)),
    ]


@dataclass
class SelfCheckResult:
    """Outcome of running the battery on one machine."""

    machine_id: int
    passed: bool
    duration_s: float
    items_run: List[str] = field(default_factory=list)
    failed_item: Optional[str] = None


class SelfCheckRunner:
    """Runs the battery, short-circuiting on first failure."""

    def __init__(self, battery: Optional[List[CheckItem]] = None):
        self.battery = (battery if battery is not None
                        else default_check_battery())
        if not self.battery:
            raise ValueError("battery must not be empty")

    def run(self, machine: Machine) -> SelfCheckResult:
        duration = 0.0
        items_run: List[str] = []
        for item in self.battery:
            duration += item.duration_s
            items_run.append(item.name)
            if not item.passes(machine):
                return SelfCheckResult(
                    machine_id=machine.id, passed=False,
                    duration_s=duration, items_run=items_run,
                    failed_item=item.name)
        return SelfCheckResult(machine_id=machine.id, passed=True,
                               duration_s=duration, items_run=items_run)

    def full_duration(self) -> float:
        """Cost of a clean pass over the whole battery."""
        return sum(item.duration_s for item in self.battery)
