"""Stack-trace aggregation and shared-parallel-group isolation.

The three-step procedure of Fig. 7:

1. **Parse process trees** — done by the tracer; the analyzer receives
   traces only from training-related processes (trainer / dataloader /
   checkpoint workers).
2. **Aggregate and identify outliers** — traces are grouped by their
   rendered text.  Within each process role, the *largest* group is
   healthy; groups at or below ``outlier_frac`` of the largest are
   outliers.  (Roles are aggregated separately: every dataloader waits
   on its pipe, and lumping those in with trainer stacks would swamp
   the signal.)
3. **Find the outliers' shared parallel groups** — for each parallel
   dimension, collect the groups containing outlier ranks; choose the
   dimension needing the fewest groups (ties: smaller machine span,
   then PP > TP > DP, pipeline groups being the common fault domain).
   The machines spanned by the chosen groups form the eviction set.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.parallelism import RankTopology
from repro.training.stacks import StackTrace

_DIM_PREFERENCE = ("pp", "tp", "dp")


@dataclass
class TraceGroup:
    """One cluster of identical stack texts."""

    text: str
    role: str
    traces: List[StackTrace] = field(default_factory=list)
    is_outlier: bool = False

    @property
    def size(self) -> int:
        return len(self.traces)

    @property
    def ranks(self) -> List[int]:
        return sorted({t.rank for t in self.traces})

    @property
    def machine_ids(self) -> List[int]:
        return sorted({t.machine_id for t in self.traces})


@dataclass
class AggregationResult:
    """Outcome of one aggregation round."""

    groups: List[TraceGroup]
    outlier_ranks: List[int]
    outlier_machines: List[int]
    #: Parallel dimension whose groups the outliers share (None if the
    #: capture looked healthy or no dimension isolates the outliers).
    shared_dim: Optional[str]
    #: Rank groups (along ``shared_dim``) implicated by the outliers.
    shared_groups: List[List[int]]
    #: Machines to evict (the shared groups' span, or the outlier
    #: machines themselves as a fallback).
    eviction_machines: List[int]

    @property
    def found_suspects(self) -> bool:
        return bool(self.eviction_machines)


@dataclass(frozen=True)
class AggregationConfig:
    """Knobs for outlier classification."""

    #: A group is an outlier if its size ≤ this fraction of the largest
    #: same-role group.
    outlier_frac: float = 0.5
    #: Ignore roles with fewer traces than this (not enough signal).
    min_role_traces: int = 2


def _role_of(process_name: str) -> str:
    for role in ("dataloader", "ckpt"):
        if process_name.startswith(role):
            return role
    return "trainer"


class RuntimeAnalyzer:
    """Aggregates captured stacks and proposes machines to isolate."""

    def __init__(self, topology: RankTopology,
                 config: Optional[AggregationConfig] = None):
        self.topology = topology
        self.config = config or AggregationConfig()

    # ------------------------------------------------------------------
    def aggregate(self, traces: Sequence[StackTrace],
                  slot_to_machine: Optional[Dict[int, int]] = None
                  ) -> AggregationResult:
        """Run the three-step aggregation over one capture."""
        if not traces:
            raise ValueError("no traces to aggregate")
        groups = self._group_traces(traces)
        self._mark_outliers(groups)
        outlier_ranks = sorted({
            t.rank for g in groups if g.is_outlier for t in g.traces})
        outlier_machines = sorted({
            t.machine_id for g in groups if g.is_outlier for t in g.traces})
        if not outlier_ranks:
            return AggregationResult(
                groups=groups, outlier_ranks=[], outlier_machines=[],
                shared_dim=None, shared_groups=[], eviction_machines=[])
        dim, shared = self._shared_parallel_groups(outlier_ranks)
        if dim is None:
            eviction = outlier_machines
            shared = []
        else:
            slots = sorted({self.topology.machine_of_rank(r)
                            for g in shared for r in g})
            mapping = slot_to_machine or {}
            eviction = sorted(mapping.get(s, s) for s in slots)
        return AggregationResult(
            groups=groups, outlier_ranks=outlier_ranks,
            outlier_machines=outlier_machines, shared_dim=dim,
            shared_groups=shared, eviction_machines=eviction)

    # ------------------------------------------------------------------
    def _group_traces(self, traces: Sequence[StackTrace]
                      ) -> List[TraceGroup]:
        buckets: Dict[Tuple[str, str], TraceGroup] = {}
        for trace in traces:
            role = _role_of(trace.process_name)
            key = (role, trace.text())
            group = buckets.get(key)
            if group is None:
                group = TraceGroup(text=trace.text(), role=role)
                buckets[key] = group
            group.traces.append(trace)
        # deterministic ordering: biggest first, then text
        return sorted(buckets.values(),
                      key=lambda g: (-g.size, g.role, g.text))

    def _mark_outliers(self, groups: List[TraceGroup]) -> None:
        by_role: Dict[str, List[TraceGroup]] = defaultdict(list)
        for group in groups:
            by_role[group.role].append(group)
        for role, role_groups in by_role.items():
            total = sum(g.size for g in role_groups)
            if total < self.config.min_role_traces:
                continue
            largest = max(g.size for g in role_groups)
            for group in role_groups:
                if group.size < largest and (
                        group.size <= self.config.outlier_frac * largest):
                    group.is_outlier = True

    def _shared_parallel_groups(self, outlier_ranks: List[int]
                                ) -> Tuple[Optional[str], List[List[int]]]:
        """Pick the dimension whose groups most tightly cover the outliers."""
        best: Optional[Tuple[int, int, int, str, List[List[int]]]] = None
        outliers = set(outlier_ranks)
        for pref, dim in enumerate(_DIM_PREFERENCE):
            if self.topology.group_size(dim) <= 1:
                continue
            implicated = [g for g in self.topology.groups(dim)
                          if outliers & set(g)]
            span_slots = {self.topology.machine_of_rank(r)
                          for g in implicated for r in g}
            candidate = (len(implicated), len(span_slots), pref, dim,
                         implicated)
            if best is None or candidate[:3] < best[:3]:
                best = candidate
        if best is None:
            return None, []
        # If the chosen dimension implicates more than half the job's
        # machines, isolation failed — fall back to the raw outliers.
        span = best[1]
        if span > self.topology.num_machines // 2 and span > 1:
            return None, []
        return best[3], best[4]
