"""Fail-slow (MFU decline) localization by repeated aggregation voting.

Per the paper (Sec. 5.1): "For fail-slow incidents, ByteRobust repeats
aggregation every 10 seconds, flagging the parallel group with the most
outliers at each round.  The parallel group with the highest cumulative
flag count across 5 rounds is marked as the degrader for over-eviction."

Repeated rounds matter because a slow machine is only *sometimes*
distinguishable — at capture time it may happen to be at the same
barrier as everyone else.  Voting integrates the noisy per-round signal.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analyzer.aggregation import AggregationResult, RuntimeAnalyzer
from repro.sim import Simulator
from repro.training.stacks import StackTrace


@dataclass
class FailSlowVerdict:
    """Outcome of a voting run."""

    rounds: int
    flag_counts: Dict[Tuple[str, int], int]
    #: (dim, group_index) with the most flags, or None if nothing stood out.
    degrader: Optional[Tuple[str, int]]
    eviction_machines: List[int] = field(default_factory=list)

    @property
    def found_suspects(self) -> bool:
        return bool(self.eviction_machines)


class FailSlowVoter:
    """Aggregates repeatedly and votes on the degrading parallel group."""

    def __init__(self, analyzer: RuntimeAnalyzer, rounds: int = 5,
                 interval_s: float = 10.0):
        if rounds < 1:
            raise ValueError("need at least one round")
        self.analyzer = analyzer
        self.rounds = rounds
        self.interval_s = interval_s

    def run(self, sim: Simulator,
            capture_fn: Callable[[], Sequence[StackTrace]],
            slot_to_machine: Optional[Dict[int, int]] = None,
            done: Optional[Callable[[FailSlowVerdict], None]] = None
            ) -> None:
        """Schedule the voting rounds on the simulator.

        ``capture_fn`` is invoked once per round (10 s apart); ``done``
        receives the verdict after the final round.
        """
        flags: Counter = Counter()
        group_machines: Dict[Tuple[str, int], List[int]] = {}

        def one_round(round_index: int) -> None:
            result = self.analyzer.aggregate(list(capture_fn()),
                                             slot_to_machine)
            flagged = self._flag_of(result)
            if flagged is not None:
                flags[flagged] += 1
                group_machines[flagged] = result.eviction_machines
            if round_index + 1 < self.rounds:
                sim.schedule(self.interval_s,
                             lambda: one_round(round_index + 1))
            elif done is not None:
                done(self._verdict(flags, group_machines))

        one_round(0)

    def run_sync(self, captures: Sequence[Sequence[StackTrace]],
                 slot_to_machine: Optional[Dict[int, int]] = None
                 ) -> FailSlowVerdict:
        """Vote over pre-collected captures (no simulator needed)."""
        flags: Counter = Counter()
        group_machines: Dict[Tuple[str, int], List[int]] = {}
        for traces in captures[:self.rounds]:
            result = self.analyzer.aggregate(list(traces), slot_to_machine)
            flagged = self._flag_of(result)
            if flagged is not None:
                flags[flagged] += 1
                group_machines[flagged] = result.eviction_machines
        return self._verdict(flags, group_machines)

    # ------------------------------------------------------------------
    def _flag_of(self, result: AggregationResult
                 ) -> Optional[Tuple[str, int]]:
        """The (dim, group_index) flagged by one round, if any."""
        if result.shared_dim is None or not result.shared_groups:
            return None
        # the group with the most outliers among the implicated ones
        outliers = set(result.outlier_ranks)
        best_group = max(result.shared_groups,
                         key=lambda g: len(outliers & set(g)))
        groups = self.analyzer.topology.groups(result.shared_dim)
        return (result.shared_dim, groups.index(best_group))

    def _verdict(self, flags: Counter,
                 group_machines: Dict[Tuple[str, int], List[int]]
                 ) -> FailSlowVerdict:
        if not flags:
            return FailSlowVerdict(rounds=self.rounds, flag_counts={},
                                   degrader=None)
        degrader, _count = max(flags.items(),
                               key=lambda kv: (kv[1], kv[0]))
        return FailSlowVerdict(
            rounds=self.rounds, flag_counts=dict(flags), degrader=degrader,
            eviction_machines=group_machines.get(degrader, []))
