"""Runtime Analyzer (control plane, Sec. 5): data-driven over-eviction.

Given stack captures from the on-demand tracer, the analyzer

1. groups identical stack texts (string matching),
2. declares the dominant group(s) healthy and the rest outliers,
3. finds the smallest family of parallel groups shared by the outliers
   and isolates **all machines those groups span** — over-evicting on
   purpose, because evicting a whole PP group immediately beats chasing
   the one or two truly-faulty nodes while thousands of GPUs idle.

For fail-slow incidents (MFU decline) the analyzer repeats aggregation
every 10 seconds and flags the parallel group with the most outliers
each round; the group with the highest cumulative flag count across
five rounds is the degrader.
"""

from repro.analyzer.aggregation import (
    AggregationConfig,
    AggregationResult,
    RuntimeAnalyzer,
    TraceGroup,
)
from repro.analyzer.failslow import FailSlowVoter

__all__ = [
    "AggregationConfig",
    "AggregationResult",
    "FailSlowVoter",
    "RuntimeAnalyzer",
    "TraceGroup",
]
